"""Inverse throughput analyses ("tuning-parameter" mode).

Section 3.1 of the paper: for data-dependent algorithms where the average
operation rate cannot be predicted, "a better approach would be to treat
``throughput_proc`` as an independent variable and select a desired speedup
value.  Then one can solve for the particular ``throughput_proc`` value
required to achieve that desired speedup."  The MD case study (Section 5.2)
uses exactly this: 50 ops/cycle is the value the equations return for the
desired ~10x speedup, interpreted qualitatively as "substantial data
parallelism and functional pipelining must be achieved".

This module inverts Equations (5)-(7) for each tunable in turn:
``throughput_proc``, ``f_clock``, and a uniform ``alpha``.  Each solver
raises :class:`~repro.errors.GoalSeekError` when the target is infeasible —
e.g. communication time alone already exceeds the per-iteration budget, in
which case *no* amount of compute parallelism can reach the target.
"""

from __future__ import annotations

import math

from ..errors import GoalSeekError, ParameterError
from .buffering import BufferingMode
from .params import RATInput
from .throughput import communication_time, computation_time

__all__ = [
    "iteration_budget",
    "required_throughput_proc",
    "required_clock",
    "required_alpha",
    "max_achievable_speedup",
]


def iteration_budget(rat: RATInput, target_speedup: float) -> float:
    """Per-iteration time budget implied by a target speedup.

    From Equation (7): ``t_RC <= t_soft / speedup``; dividing by ``N_iter``
    gives the time each communication+computation block may take.
    """
    if target_speedup <= 0:
        raise ParameterError(f"target_speedup must be positive, got {target_speedup}")
    return rat.software.t_soft / target_speedup / rat.software.n_iterations


def _comp_budget(
    rat: RATInput, target_speedup: float, mode: BufferingMode
) -> float:
    """Time available for computation per iteration under the target.

    Single buffered subtracts the (fixed) communication time from the
    budget; double buffered allows computation to fill the whole budget,
    but the budget must still cover communication (which cannot be
    compressed by adding compute parallelism).
    """
    budget = iteration_budget(rat, target_speedup)
    t_comm = communication_time(rat)
    if mode is BufferingMode.SINGLE:
        remaining = budget - t_comm
        if remaining <= 0:
            raise GoalSeekError(
                f"target speedup {target_speedup:g} is infeasible single-buffered: "
                f"communication alone takes {t_comm:.3e} s of the "
                f"{budget:.3e} s per-iteration budget"
            )
        return remaining
    if mode is BufferingMode.DOUBLE:
        if t_comm > budget:
            raise GoalSeekError(
                f"target speedup {target_speedup:g} is infeasible even "
                f"double-buffered: communication ({t_comm:.3e} s) exceeds the "
                f"{budget:.3e} s per-iteration budget"
            )
        return budget
    raise ParameterError(f"unknown buffering mode {mode!r}")


def required_throughput_proc(
    rat: RATInput,
    target_speedup: float,
    mode: BufferingMode = BufferingMode.SINGLE,
) -> float:
    """Operations/cycle needed to reach a target speedup.

    Inverts Equation (4) for ``throughput_proc`` given the computation-time
    budget.  The result "serves qualitatively to the user as an indicator"
    of how much parallelism the design must deliver (paper, Section 5.2).
    """
    budget = _comp_budget(rat, target_speedup, mode)
    total_ops = rat.dataset.elements_in * rat.computation.ops_per_element
    return total_ops / (rat.computation.clock_hz * budget)


def required_clock(
    rat: RATInput,
    target_speedup: float,
    mode: BufferingMode = BufferingMode.SINGLE,
) -> float:
    """Fabric clock (Hz) needed to reach a target speedup.

    Inverts Equation (4) for ``f_clock`` with ``throughput_proc`` held at
    the worksheet value.  Useful for judging whether a design concept is
    viable at all: a required clock beyond the device's practical ceiling
    means the parallelism estimate, not the clock, must improve.
    """
    budget = _comp_budget(rat, target_speedup, mode)
    total_ops = rat.dataset.elements_in * rat.computation.ops_per_element
    return total_ops / (rat.computation.throughput_proc * budget)


def required_alpha(
    rat: RATInput,
    target_speedup: float,
    mode: BufferingMode = BufferingMode.SINGLE,
) -> float:
    """Uniform sustained fraction needed to reach a target speedup.

    Solves for a single ``alpha`` applied to both directions, with
    computation time held at the worksheet value.  Returns a value that
    may exceed 1, signalling that *no* interconnect tuning can reach the
    target (the caller decides whether to treat that as infeasible; a
    value of e.g. 1.7 usefully quantifies "you need a 1.7x faster link").
    """
    budget = iteration_budget(rat, target_speedup)
    t_comp = computation_time(rat)
    if mode is BufferingMode.SINGLE:
        comm_budget = budget - t_comp
        if comm_budget <= 0:
            raise GoalSeekError(
                f"target speedup {target_speedup:g} is infeasible single-buffered: "
                f"computation alone takes {t_comp:.3e} s of the "
                f"{budget:.3e} s per-iteration budget"
            )
    elif mode is BufferingMode.DOUBLE:
        if t_comp > budget:
            raise GoalSeekError(
                f"target speedup {target_speedup:g} is infeasible even "
                f"double-buffered: computation ({t_comp:.3e} s) exceeds the "
                f"{budget:.3e} s per-iteration budget"
            )
        comm_budget = budget
    else:
        raise ParameterError(f"unknown buffering mode {mode!r}")
    total_bytes = rat.dataset.bytes_in + rat.dataset.bytes_out
    return total_bytes / (rat.communication.ideal_bandwidth * comm_budget)


def max_achievable_speedup(
    rat: RATInput, mode: BufferingMode = BufferingMode.SINGLE
) -> float:
    """Speedup ceiling as compute parallelism grows without bound.

    With ``throughput_proc -> infinity``, ``t_comp -> 0`` and the execution
    time floors at ``N_iter * t_comm`` in both buffering modes.  This is
    the communication-bound Amdahl limit of the design; if it falls below
    the project's requirement, the decomposition (block sizes, data
    volume) must change, not the kernel.
    """
    t_comm = communication_time(rat)
    if t_comm == 0:
        return math.inf
    floor = rat.software.n_iterations * t_comm
    if mode not in (BufferingMode.SINGLE, BufferingMode.DOUBLE):
        raise ParameterError(f"unknown buffering mode {mode!r}")
    return rat.software.t_soft / floor
