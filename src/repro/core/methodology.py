"""The RAT methodology flow (paper Figure 1).

The flow: identify the kernel, create a design on paper, then apply three
tests —

1. **throughput test**: does the predicted speedup meet the requirement?
   If not: *insufficient communication or computation throughput* — revise
   the design.
2. **numerical precision test**: does the minimum precision satisfying the
   error tolerance exist and balance performance?  If not: *unrealizable
   precision requirement*.
3. **resource test**: does the estimated design fit the device?  If not:
   *insufficient resources*.

Only after all three pass does the designer "build in HDL or HLL, simulate
design, verify on HW platform" — i.e. PROCEED.  The tests "are not
necessarily used as a single, sequential procedure.  Often, RAT is applied
iteratively during the design process until a suitable version of the
algorithm is formulated or all reasonable permutations are exhausted" —
:func:`iterate_designs` implements that loop over a candidate list.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..errors import ParameterError, PrecisionError
from ..obs import get_metrics, get_tracer
from ..platforms.device import FPGADevice
from .buffering import BufferingMode
from .params import RATInput
from .precision.error import ErrorReport
from .resources.estimator import KernelDesign
from .resources.report import UtilizationReport, utilization_report
from .throughput import ThroughputPrediction, predict

__all__ = [
    "Verdict",
    "Requirements",
    "DesignCandidate",
    "MethodologyResult",
    "evaluate_design",
    "iterate_designs",
]


class Verdict(str, enum.Enum):
    """Terminal outcomes of Figure 1."""

    PROCEED = "proceed"
    INSUFFICIENT_THROUGHPUT = "insufficient throughput"
    UNREALIZABLE_PRECISION = "unrealizable precision requirement"
    INSUFFICIENT_RESOURCES = "insufficient resources"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Requirements:
    """The designer's acceptance criteria.

    ``min_speedup`` is the project's metric of success — the paper notes
    this varies from 50-100x ("middle management"), through break-even
    factors of ten, down to ~1x for embedded power savings.  Precision
    tolerances are optional (None skips the corresponding check, matching
    how the paper's case studies fixed precision up front).
    """

    min_speedup: float
    max_rel_error: float | None = None
    min_sqnr_db: float | None = None
    buffering: BufferingMode = BufferingMode.SINGLE
    routing_risk_is_failure: bool = False

    def __post_init__(self) -> None:
        if self.min_speedup <= 0:
            raise ParameterError(
                f"min_speedup must be positive, got {self.min_speedup}"
            )


@dataclass(frozen=True)
class DesignCandidate:
    """One "design on paper": worksheet input + optional deeper artefacts.

    ``precision_report`` carries the error analysis of the chosen format
    against the software reference (None when precision is asserted
    acceptable by the designer); ``kernel_design`` carries the
    architecture for the resource test (None skips it, as the molecular
    dynamics framework [13] cited by the paper chose to — at its own
    peril).
    """

    rat: RATInput
    precision_report: ErrorReport | None = None
    kernel_design: KernelDesign | None = None
    label: str = ""

    @property
    def name(self) -> str:
        """Display name: explicit label, else the worksheet name."""
        return self.label or self.rat.name or "unnamed design"


@dataclass(frozen=True)
class MethodologyResult:
    """Outcome of running the Figure-1 flow on one candidate."""

    candidate: DesignCandidate
    verdict: Verdict
    prediction: ThroughputPrediction
    utilization: UtilizationReport | None
    details: tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        """True only for the PROCEED verdict."""
        return self.verdict is Verdict.PROCEED

    def describe(self) -> str:
        """Multi-line verdict summary."""
        lines = [
            f"Design:  {self.candidate.name}",
            f"Verdict: {self.verdict.value.upper()}",
            f"  predicted speedup {self.prediction.speedup:.1f}x "
            f"({self.prediction.mode.value}-buffered, "
            f"{self.prediction.bound}-bound)",
        ]
        lines.extend(f"  {detail}" for detail in self.details)
        return "\n".join(lines)


def evaluate_design(
    candidate: DesignCandidate,
    requirements: Requirements,
    device: FPGADevice | None = None,
) -> MethodologyResult:
    """Run the three RAT tests on one candidate (Figure 1, one pass).

    Tests run in the paper's order and the verdict is the *first* failing
    test — matching the flow chart's routing, where a throughput failure
    sends the designer back to the drawing board before precision is even
    considered.  All tests still execute so the result carries complete
    diagnostics.

    When tracing is enabled (``repro.obs.configure(trace=True)``) each
    call records one ``rat.evaluate_design`` span with a child span per
    test and the verdict/speedup as attributes — the audit trail of an
    ``iterate_designs`` session becomes an exportable trace.
    """
    tracer = get_tracer()
    details: list[str] = []
    with tracer.span(
        "rat.evaluate_design", {"design": candidate.name}, "methodology"
    ) as design_span:
        # --- Throughput test ------------------------------------------------
        with tracer.span("rat.throughput_test", None, "methodology") as span:
            prediction = predict(candidate.rat, requirements.buffering)
            throughput_ok = prediction.speedup >= requirements.min_speedup
            span.set_attribute("speedup", prediction.speedup)
            span.set_attribute("required", requirements.min_speedup)
            span.set_attribute("passed", throughput_ok)
        details.append(
            f"throughput: predicted {prediction.speedup:.2f}x vs required "
            f"{requirements.min_speedup:g}x -> "
            f"{'pass' if throughput_ok else 'FAIL'}"
        )

        # --- Precision test -------------------------------------------------
        precision_ok = True
        with tracer.span("rat.precision_test", None, "methodology") as span:
            if candidate.precision_report is not None and (
                requirements.max_rel_error is not None
                or requirements.min_sqnr_db is not None
            ):
                precision_ok = candidate.precision_report.within(
                    max_rel=requirements.max_rel_error,
                    min_sqnr_db=requirements.min_sqnr_db,
                )
                details.append(
                    f"precision: {candidate.precision_report.describe()} -> "
                    f"{'pass' if precision_ok else 'FAIL'}"
                )
            else:
                details.append(
                    "precision: accepted by designer (no report/tolerance)"
                )
                span.set_attribute("skipped", True)
            span.set_attribute("passed", precision_ok)

        # --- Resource test ----------------------------------------------------
        utilization: UtilizationReport | None = None
        resources_ok = True
        with tracer.span("rat.resource_test", None, "methodology") as span:
            if candidate.kernel_design is not None:
                if device is None:
                    raise ParameterError(
                        "resource test requires a device when kernel_design "
                        "is given"
                    )
                utilization = utilization_report(candidate.kernel_design, device)
                resources_ok = utilization.fits and not (
                    requirements.routing_risk_is_failure
                    and utilization.routing_risk
                )
                limiting = utilization.limiting_resource
                details.append(
                    f"resources: limiting {limiting.value} at "
                    f"{utilization.utilization(limiting):.0%} -> "
                    f"{'pass' if resources_ok else 'FAIL'}"
                )
                span.set_attribute("limiting", limiting.value)
            else:
                details.append("resources: skipped (no kernel design supplied)")
                span.set_attribute("skipped", True)
            span.set_attribute("passed", resources_ok)

        if not throughput_ok:
            verdict = Verdict.INSUFFICIENT_THROUGHPUT
        elif not precision_ok:
            verdict = Verdict.UNREALIZABLE_PRECISION
        elif not resources_ok:
            verdict = Verdict.INSUFFICIENT_RESOURCES
        else:
            verdict = Verdict.PROCEED
        design_span.set_attribute("verdict", verdict.value)
        design_span.set_attribute("speedup", prediction.speedup)

    metrics = get_metrics()
    metrics.counter("methodology.evaluations").inc()
    metrics.counter(f"methodology.verdict.{verdict.name.lower()}").inc()

    return MethodologyResult(
        candidate=candidate,
        verdict=verdict,
        prediction=prediction,
        utilization=utilization,
        details=tuple(details),
    )


def iterate_designs(
    candidates: Iterable[DesignCandidate],
    requirements: Requirements,
    device: FPGADevice | None = None,
) -> tuple[MethodologyResult | None, list[MethodologyResult]]:
    """Apply RAT iteratively over candidate designs (Figure 1's loop).

    Returns ``(first_passing_result_or_None, all_results)``.  A ``None``
    first element is the paper's "all reasonable permutations are
    exhausted without a satisfactory solution" outcome; the full result
    list preserves the audit trail either way.
    """
    results: list[MethodologyResult] = []
    winner: MethodologyResult | None = None
    with get_tracer().span("rat.iterate_designs", None, "methodology") as span:
        for candidate in candidates:
            result = evaluate_design(candidate, requirements, device)
            results.append(result)
            if winner is None and result.passed:
                winner = result
        span.set_attribute("n_candidates", len(results))
        span.set_attribute("winner", winner.candidate.name if winner else None)
    if not results:
        raise ParameterError("iterate_designs requires at least one candidate")
    return winner, results
