"""Kernel-level resource estimation.

A :class:`KernelDesign` describes a proposed hardware architecture the way
the paper's case studies do — "eight separate pipelines ... each pipelined
unit can process one element with respect to one bin per cycle" — as a set
of operator instances per pipeline, a replication count, explicit buffers,
and a fixed platform-wrapper overhead ("vendor-provided wrappers ... can
consume a significant number of memories but the quantity is generally
constant and independent of the application design").

:func:`estimate_kernel` folds that description into a single
:class:`ResourceVector` for a target device, converting buffer bytes into
whole BRAM tiles per buffer (each independently addressed memory rounds up
separately).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from ...errors import ResourceError
from ...platforms.device import FPGADevice
from .model import ResourceVector
from .operators import OperatorCost, operator_cost

__all__ = ["OperatorInstance", "BufferSpec", "KernelDesign", "estimate_kernel"]


@dataclass(frozen=True)
class OperatorInstance:
    """``count`` copies of one operator at one width inside a pipeline."""

    kind: str
    width: int
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ResourceError(f"operator count must be >= 1, got {self.count}")

    def cost(self, dsp_width_bits: int) -> OperatorCost:
        """Per-instance cost on a device with the given DSP width."""
        return operator_cost(self.kind, self.width, dsp_width_bits)


@dataclass(frozen=True)
class BufferSpec:
    """One on-chip memory: ``count`` buffers of ``depth`` x ``width_bits``.

    ``double_buffered`` doubles the count — the second copy is what makes
    the Figure-2 overlap possible, and its BRAM cost is exactly the
    resource-side price of double buffering.
    """

    name: str
    depth: int
    width_bits: int
    count: int = 1
    double_buffered: bool = False

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ResourceError(f"buffer {self.name}: depth must be >= 1")
        if self.width_bits < 1:
            raise ResourceError(f"buffer {self.name}: width_bits must be >= 1")
        if self.count < 1:
            raise ResourceError(f"buffer {self.name}: count must be >= 1")

    @property
    def effective_count(self) -> int:
        """Physical buffer instances including the double-buffer copy."""
        return self.count * (2 if self.double_buffered else 1)

    @property
    def bytes_per_buffer(self) -> float:
        """Storage per buffer instance, in bytes."""
        return self.depth * self.width_bits / 8

    def bram_blocks(self, device: FPGADevice) -> int:
        """Whole BRAM tiles consumed on a device (per-buffer ceiling).

        A tile also has a maximum *width*; wide shallow buffers consume
        extra tiles for width even when the bit total fits one tile.  We
        model tiles as configurable to 36 bits wide (Virtex-4 BRAM dual
        18-bit ports; Stratix M4K similar), so width overflow multiplies.
        """
        tile_bits = device.bram_kbits_per_block * 1024
        width_tiles = math.ceil(self.width_bits / 36)
        depth_bits = self.depth * min(self.width_bits, 36)
        depth_tiles = math.ceil(depth_bits / tile_bits)
        return self.effective_count * width_tiles * depth_tiles


@dataclass(frozen=True)
class KernelDesign:
    """A proposed hardware architecture for one computational kernel.

    Parameters
    ----------
    name:
        e.g. ``"1-D PDF estimator"``.
    pipeline_operators:
        Operator mix of *one* pipeline replica.
    replicas:
        Number of parallel pipelines (the 1-D PDF uses 8).
    buffers:
        On-chip memories (I/O buffers, accumulators, lookup tables).
    wrapper_overhead:
        Fixed platform-wrapper demand, independent of the design.
    control_logic_fraction:
        Extra logic added on top of the datapath sum for control FSMs,
        muxing and routing margin (defaults to 25%).
    ops_per_element_per_replica:
        Operations one replica performs per element per cycle when fully
        fed; ``replicas x this`` is the design's ideal ``throughput_proc``
        before derating (see :meth:`ideal_throughput_proc`).
    """

    name: str
    pipeline_operators: tuple[OperatorInstance, ...]
    replicas: int = 1
    buffers: tuple[BufferSpec, ...] = ()
    wrapper_overhead: ResourceVector = field(default_factory=ResourceVector)
    control_logic_fraction: float = 0.25
    ops_per_element_per_replica: float = 0.0

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ResourceError(f"{self.name}: replicas must be >= 1")
        if self.control_logic_fraction < 0:
            raise ResourceError(
                f"{self.name}: control_logic_fraction must be >= 0"
            )

    def ideal_throughput_proc(self) -> float:
        """Design's ideal ops/cycle: replicas x per-replica rate.

        The paper derates this for pipeline latency and stalls (the 1-D
        PDF's 8 x 3 = 24 ideal was entered as 20 in the worksheet); the
        derating factor is a worksheet decision, not a property of the
        architecture, so it is applied by the case study.
        """
        return self.replicas * self.ops_per_element_per_replica

    def datapath_resources(self, device: FPGADevice) -> ResourceVector:
        """Operator resources for all replicas (no buffers or wrapper)."""
        total = ResourceVector.zero()
        for instance in self.pipeline_operators:
            cost = instance.cost(device.dsp_width_bits)
            total = total + cost.resources * instance.count
        return total * self.replicas

    def buffer_blocks(self, device: FPGADevice) -> int:
        """Total BRAM tiles over all buffers."""
        return sum(buffer.bram_blocks(device) for buffer in self.buffers)

    def buffer_bytes(self) -> float:
        """Total buffered bytes over all buffers."""
        return sum(
            buffer.effective_count * buffer.bytes_per_buffer
            for buffer in self.buffers
        )


def estimate_kernel(design: KernelDesign, device: FPGADevice) -> ResourceVector:
    """Total resource demand of a kernel design on a device.

    Logic demand is the datapath sum inflated by the control-logic
    fraction; DSP demand is the datapath sum; BRAM demand is the per-buffer
    tile total plus any wrapper tiles.
    """
    datapath = design.datapath_resources(device)
    logic = datapath.logic * (1.0 + design.control_logic_fraction)
    bram_blocks = design.buffer_blocks(device) + design.wrapper_overhead.bram_blocks
    return ResourceVector(
        logic=logic + design.wrapper_overhead.logic,
        dsp=datapath.dsp + design.wrapper_overhead.dsp,
        bram_bytes=design.buffer_bytes() + design.wrapper_overhead.bram_bytes,
        bram_blocks=bram_blocks,
    )
