"""Datapath operator cost library.

Section 3.3 of the paper: "the usage of RAT requires some vendor-specific
knowledge (e.g. 32-bit fixed-point multiplications on Xilinx V4 FPGAs
require two dedicated 18-bit multipliers)".  This module encodes that kind
of knowledge as parameterised cost functions: each operator maps a bit
width (and the device's DSP primitive width) to a
:class:`~repro.core.resources.model.ResourceVector` plus timing metadata
(pipeline latency and initiation interval) consumed by the hardware
simulator.

Costs are deliberately *estimates of the right magnitude*, as the paper
prescribes — "resource analyses are meant to highlight general application
trends and predict scalability", not replace place-and-route.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

from ...errors import ResourceError
from ..precision.formats import FixedPointFormat
from .model import ResourceVector

__all__ = ["OperatorCost", "OPERATOR_LIBRARY", "get_operator", "operator_cost"]


@dataclass(frozen=True)
class OperatorCost:
    """Resource and timing cost of one operator instance.

    ``latency_cycles`` is the pipeline depth (cycles from input to
    output); ``initiation_interval`` the cycles between successive
    independent inputs (1 for fully pipelined units; 16 for the paper's
    iterative Booth multiplier, which reuses one adder across cycles).
    """

    name: str
    resources: ResourceVector
    latency_cycles: int
    initiation_interval: int = 1

    def __post_init__(self) -> None:
        if self.latency_cycles < 0:
            raise ResourceError(f"{self.name}: latency must be >= 0")
        if self.initiation_interval < 1:
            raise ResourceError(f"{self.name}: initiation interval must be >= 1")

    @property
    def ops_per_cycle(self) -> float:
        """Sustained operation rate of one instance (1 / II)."""
        return 1.0 / self.initiation_interval


CostFn = Callable[[int, int], OperatorCost]


def _slices_for_add(width: int) -> float:
    # Ripple/fast-carry adders consume ~width/2 slices on 4-LUT fabrics.
    return max(1.0, width / 2)


def _add(width: int, dsp_width: int) -> OperatorCost:
    return OperatorCost(
        name=f"add{width}",
        resources=ResourceVector(logic=_slices_for_add(width)),
        latency_cycles=1,
    )


def _sub(width: int, dsp_width: int) -> OperatorCost:
    cost = _add(width, dsp_width)
    return OperatorCost(
        name=f"sub{width}",
        resources=cost.resources,
        latency_cycles=cost.latency_cycles,
    )


def _compare(width: int, dsp_width: int) -> OperatorCost:
    # A comparison is a subtraction whose result bits feed one LUT level.
    return OperatorCost(
        name=f"cmp{width}",
        resources=ResourceVector(logic=_slices_for_add(width)),
        latency_cycles=1,
    )


def _mult_dsp(width: int, dsp_width: int) -> OperatorCost:
    fmt = FixedPointFormat(total_bits=max(width, 2), frac_bits=0, signed=True)
    dsps = fmt.multipliers_required(dsp_width)
    # Pipeline registers between DSP tiles: ~log2(tiles)+2 stages.
    latency = 2 + max(0, math.ceil(math.log2(dsps))) if dsps > 1 else 2
    return OperatorCost(
        name=f"mult{width}",
        resources=ResourceVector(dsp=dsps, logic=width / 4),
        latency_cycles=latency,
    )


def _mult_booth(width: int, dsp_width: int) -> OperatorCost:
    """Iterative Booth multiplier: one adder reused for ``width/2`` cycles.

    This is the paper's Section 3.1 example: a resource-saving 32-bit
    multiplier built from the Booth algorithm taking 16 clock cycles —
    zero DSP blocks, small logic footprint, initiation interval 16.
    """
    cycles = max(1, width // 2)
    return OperatorCost(
        name=f"booth_mult{width}",
        resources=ResourceVector(logic=_slices_for_add(width) + width),
        latency_cycles=cycles,
        initiation_interval=cycles,
    )


def _mac(width: int, dsp_width: int) -> OperatorCost:
    """Multiply-accumulate: the PDF pipelines' workhorse.

    An ``18x18`` MAC fits one DSP48 (Xilinx) or two 9-bit DSP elements
    (Stratix-II), which the width/dsp_width tiling captures.
    """
    mult = _mult_dsp(width, dsp_width)
    return OperatorCost(
        name=f"mac{width}",
        resources=mult.resources + ResourceVector(logic=_slices_for_add(width)),
        latency_cycles=mult.latency_cycles + 1,
    )


def _divide(width: int, dsp_width: int) -> OperatorCost:
    # Radix-2 restoring divider: one bit per cycle, adder-sized logic per bit.
    return OperatorCost(
        name=f"div{width}",
        resources=ResourceVector(logic=2.0 * width),
        latency_cycles=width,
        initiation_interval=width,
    )


def _sqrt(width: int, dsp_width: int) -> OperatorCost:
    # Non-restoring square root: width/2 iterations.
    cycles = max(1, width // 2)
    return OperatorCost(
        name=f"sqrt{width}",
        resources=ResourceVector(logic=1.5 * width),
        latency_cycles=cycles,
        initiation_interval=cycles,
    )


def _fadd(width: int, dsp_width: int) -> OperatorCost:
    # Single-precision float adder: align/add/normalise, ~350 slices, no DSP.
    scale = width / 32.0
    return OperatorCost(
        name=f"fadd{width}",
        resources=ResourceVector(logic=350.0 * scale),
        latency_cycles=max(4, round(10 * scale)),
    )


def _fmul(width: int, dsp_width: int) -> OperatorCost:
    # Float multiplier: mantissa product on DSPs + normalisation logic.
    mantissa = {32: 24, 64: 53}.get(width, max(8, int(width * 0.75)))
    fmt = FixedPointFormat(total_bits=mantissa, frac_bits=0, signed=False)
    dsps = fmt.multipliers_required(dsp_width)
    return OperatorCost(
        name=f"fmul{width}",
        resources=ResourceVector(dsp=dsps, logic=120.0 * width / 32.0),
        latency_cycles=max(5, 4 + dsps),
    )


def _fdiv(width: int, dsp_width: int) -> OperatorCost:
    mantissa = {32: 24, 64: 53}.get(width, max(8, int(width * 0.75)))
    return OperatorCost(
        name=f"fdiv{width}",
        resources=ResourceVector(logic=800.0 * width / 32.0),
        latency_cycles=mantissa + 4,
        initiation_interval=1,
    )


OPERATOR_LIBRARY: Mapping[str, CostFn] = {
    "add": _add,
    "sub": _sub,
    "compare": _compare,
    "mult": _mult_dsp,
    "booth_mult": _mult_booth,
    "mac": _mac,
    "divide": _divide,
    "sqrt": _sqrt,
    "fadd": _fadd,
    "fmul": _fmul,
    "fdiv": _fdiv,
}


def get_operator(kind: str) -> CostFn:
    """Look up an operator cost function by name."""
    try:
        return OPERATOR_LIBRARY[kind]
    except KeyError:
        raise ResourceError(
            f"unknown operator {kind!r}; known: {sorted(OPERATOR_LIBRARY)}"
        ) from None


def operator_cost(kind: str, width: int, dsp_width_bits: int = 18) -> OperatorCost:
    """Cost of one operator instance at a given bit width.

    ``dsp_width_bits`` is the device's multiplier primitive width: 18 for
    Virtex-4 DSP48s, 9 for the Stratix-II 9-bit DSP elements the paper's
    Table 10 counts.
    """
    if width < 1:
        raise ResourceError(f"operator width must be >= 1, got {width}")
    if dsp_width_bits < 2:
        raise ResourceError(f"dsp_width_bits must be >= 2, got {dsp_width_bits}")
    return get_operator(kind)(width, dsp_width_bits)
