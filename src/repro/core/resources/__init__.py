"""Resource utilization analysis (paper Section 3.3).

The resource test estimates a proposed design's demand for the three
resource classes that empirically bound FPGA designs — on-chip RAM,
dedicated multipliers/DSP blocks, and basic logic elements — and compares
it against a target device's capacities to "detect designs that consume
more than the available resources" before any HDL exists.

* :mod:`model` — :class:`ResourceVector`, an additive demand vector;
* :mod:`operators` — a cost library for common datapath operators
  (adders, multipliers incl. the 16-cycle Booth variant from the paper's
  operation-scope example, dividers, square roots, float units);
* :mod:`estimator` — kernel descriptions (operator mix x replication +
  buffering) folded into a total demand;
* :mod:`report` — utilization tables in the style of the paper's
  Tables 4, 7 and 10, with the routing-strain warning the paper gives
  ("routing strain increases exponentially as logic utilization
  approaches maximum ... it is often unwise to fill the entire FPGA").
"""

from .estimator import BufferSpec, KernelDesign, OperatorInstance, estimate_kernel
from .model import ResourceVector
from .operators import OPERATOR_LIBRARY, OperatorCost, get_operator, operator_cost
from .report import UtilizationReport, utilization_report

__all__ = [
    "BufferSpec",
    "KernelDesign",
    "OPERATOR_LIBRARY",
    "OperatorCost",
    "OperatorInstance",
    "ResourceVector",
    "UtilizationReport",
    "estimate_kernel",
    "get_operator",
    "operator_cost",
    "utilization_report",
]
