"""Resource utilization reports (paper Tables 4, 7, 10).

The report divides a design's estimated demand by the device's capacities
and renders the three-row table the paper uses, flagging two conditions:

* **over-capacity** — any resource above 100% (Figure 1's "insufficient
  resources" verdict);
* **routing risk** — logic utilization above a configurable threshold
  (default 80%), reflecting the paper's warning that "routing strain
  increases exponentially as logic element utilization approaches
  maximum ... it is often unwise (if not impossible) to fill the entire
  FPGA."
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ResourceError
from ...platforms.device import FPGADevice, ResourceKind
from ...units import format_percent
from .estimator import KernelDesign, estimate_kernel
from .model import ResourceVector

__all__ = ["UtilizationReport", "utilization_report", "ROUTING_RISK_THRESHOLD"]

# Above this logic utilization, place-and-route typically struggles.
ROUTING_RISK_THRESHOLD = 0.80


@dataclass(frozen=True)
class UtilizationReport:
    """Estimated demand vs. device capacity for one design."""

    design_name: str
    device: FPGADevice
    demand: ResourceVector
    routing_risk_threshold: float = ROUTING_RISK_THRESHOLD

    def utilization(self, kind: ResourceKind) -> float:
        """Fraction of device capacity demanded for one resource kind.

        A device with zero capacity for a demanded resource yields
        ``inf`` (demand exists, capacity does not).
        """
        capacity = self.device.capacity(kind)
        demand = {
            ResourceKind.LOGIC: self.demand.logic,
            ResourceKind.DSP: self.demand.dsp,
            ResourceKind.BRAM: self.demand.bram_blocks,
        }[kind]
        if capacity == 0:
            return float("inf") if demand > 0 else 0.0
        return demand / capacity

    @property
    def fits(self) -> bool:
        """True when every resource is within device capacity."""
        return all(self.utilization(kind) <= 1.0 for kind in ResourceKind)

    @property
    def routing_risk(self) -> bool:
        """True when logic utilization is in the risky region."""
        return self.utilization(ResourceKind.LOGIC) > self.routing_risk_threshold

    @property
    def limiting_resource(self) -> ResourceKind:
        """The resource closest to (or furthest past) capacity.

        The MD case study's parallelism "was ultimately limited by the
        availability of multiplier resources" — this property identifies
        that bound programmatically.
        """
        return max(ResourceKind, key=self.utilization)

    def headroom_replicas(self, per_replica: ResourceVector) -> int:
        """How many more copies of a replica the device could absorb.

        Supports the paper's observation that the PDF designs' "relatively
        low resource usage illustrates a potential for further speedup by
        including additional parallel kernels."
        """
        if per_replica.is_zero():
            raise ResourceError("per_replica demand must be non-zero")
        remaining = {
            ResourceKind.LOGIC: self.device.logic_cells - self.demand.logic,
            ResourceKind.DSP: self.device.dsp_blocks - self.demand.dsp,
            ResourceKind.BRAM: self.device.bram_blocks - self.demand.bram_blocks,
        }
        needs = {
            ResourceKind.LOGIC: per_replica.logic,
            ResourceKind.DSP: per_replica.dsp,
            ResourceKind.BRAM: per_replica.bram_blocks,
        }
        counts = []
        for kind in ResourceKind:
            if needs[kind] > 0:
                counts.append(int(remaining[kind] // needs[kind]))
        return max(0, min(counts)) if counts else 0

    def rows(self) -> list[tuple[str, float]]:
        """``(vendor label, utilization fraction)`` rows, paper order."""
        return [
            (self.device.resource_label(ResourceKind.DSP), self.utilization(ResourceKind.DSP)),
            (self.device.resource_label(ResourceKind.BRAM), self.utilization(ResourceKind.BRAM)),
            (self.device.resource_label(ResourceKind.LOGIC), self.utilization(ResourceKind.LOGIC)),
        ]

    def render(self) -> str:
        """ASCII table in the paper's Table 4/7/10 layout."""
        title = f"Resource usage of {self.design_name} ({self.device.name})"
        rows = self.rows()
        width = max(len(label) for label, _ in rows)
        lines = [title, f"{'FPGA Resource'.ljust(width)}  Utilization"]
        lines.append("-" * (width + 13))
        for label, value in rows:
            lines.append(f"{label.ljust(width)}  {format_percent(value)}")
        verdicts = []
        if not self.fits:
            verdicts.append(
                f"OVER CAPACITY: {self.limiting_resource.value} at "
                f"{format_percent(self.utilization(self.limiting_resource))}"
            )
        elif self.routing_risk:
            verdicts.append(
                "ROUTING RISK: logic above "
                f"{format_percent(self.routing_risk_threshold)}"
            )
        lines.extend(verdicts)
        return "\n".join(lines)


def utilization_report(
    design: KernelDesign,
    device: FPGADevice,
    *,
    routing_risk_threshold: float = ROUTING_RISK_THRESHOLD,
) -> UtilizationReport:
    """Estimate a design and wrap the result in a report."""
    if not 0 < routing_risk_threshold <= 1:
        raise ResourceError(
            f"routing_risk_threshold must be in (0, 1], got {routing_risk_threshold}"
        )
    return UtilizationReport(
        design_name=design.name,
        device=device,
        demand=estimate_kernel(design, device),
        routing_risk_threshold=routing_risk_threshold,
    )
