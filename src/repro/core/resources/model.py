"""Additive resource demand vectors.

A design's resource estimate is a vector over the three classes RAT
tracks (logic elements, DSP blocks, BRAM tiles).  Demands add when
components are composed and scale when a component is replicated —
precisely the algebra :class:`ResourceVector` implements.  BRAM demand is
carried both as tile counts and as raw bytes so the estimator can convert
storage needs to tiles for a specific device's tile size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ResourceError

__all__ = ["ResourceVector"]


@dataclass(frozen=True)
class ResourceVector:
    """Demand for FPGA resources, additive under composition.

    ``logic`` counts basic logic units (slices or ALUTs — the estimator
    works in the target family's unit), ``dsp`` dedicated multiplier
    blocks, ``bram_bytes`` raw on-chip storage.  ``bram_blocks`` may be
    set directly when the design maps buffers to tiles explicitly;
    otherwise :meth:`with_bram_blocks_for` derives it from bytes.
    """

    logic: float = 0.0
    dsp: float = 0.0
    bram_bytes: float = 0.0
    bram_blocks: float = 0.0

    def __post_init__(self) -> None:
        for name in ("logic", "dsp", "bram_bytes", "bram_blocks"):
            value = getattr(self, name)
            if value < 0:
                raise ResourceError(f"{name} must be >= 0, got {value}")

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return ResourceVector(
            logic=self.logic + other.logic,
            dsp=self.dsp + other.dsp,
            bram_bytes=self.bram_bytes + other.bram_bytes,
            bram_blocks=self.bram_blocks + other.bram_blocks,
        )

    def __mul__(self, factor: float) -> "ResourceVector":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        if factor < 0:
            raise ResourceError(f"replication factor must be >= 0, got {factor}")
        return ResourceVector(
            logic=self.logic * factor,
            dsp=self.dsp * factor,
            bram_bytes=self.bram_bytes * factor,
            bram_blocks=self.bram_blocks * factor,
        )

    __rmul__ = __mul__

    @classmethod
    def zero(cls) -> "ResourceVector":
        """The additive identity."""
        return cls()

    def is_zero(self) -> bool:
        """True when every component is zero."""
        return (
            self.logic == 0
            and self.dsp == 0
            and self.bram_bytes == 0
            and self.bram_blocks == 0
        )

    def with_bram_blocks_for(self, bytes_per_block: float) -> "ResourceVector":
        """Convert byte demand into whole tiles of a device's block size.

        Each independently addressed buffer would round up separately; the
        estimator calls this per buffer, so here the byte total converts
        with a single ceiling.  The explicit ``bram_blocks`` component is
        preserved and added to.
        """
        if bytes_per_block <= 0:
            raise ResourceError(
                f"bytes_per_block must be positive, got {bytes_per_block}"
            )
        import math

        derived = math.ceil(self.bram_bytes / bytes_per_block) if self.bram_bytes else 0
        return ResourceVector(
            logic=self.logic,
            dsp=self.dsp,
            bram_bytes=self.bram_bytes,
            bram_blocks=self.bram_blocks + derived,
        )

    def describe(self) -> str:
        """Compact single-line rendering."""
        return (
            f"logic={self.logic:g}, dsp={self.dsp:g}, "
            f"bram={self.bram_blocks:g} blocks ({self.bram_bytes:g} B)"
        )
