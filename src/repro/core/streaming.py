"""Streaming-application variant of the throughput test.

Section 3.1 of the paper: "The RAT throughput test inherently models FPGAs
as co-processors to general-purpose processors but the framework can be
adjusted for streaming applications."  In a streaming design data flows
continuously through the FPGA rather than in buffered blocks; the natural
performance quantities become *rates* rather than block times:

* ingest rate — what the interconnect sustains, ``alpha_write * thr_ideal``
  (bytes/s) or that divided by bytes/element (elements/s);
* drain rate — the same for results;
* compute rate — ``f_clock * throughput_proc / ops_per_element``
  (elements/s);

and the achieved element rate is the minimum of the three.  ``N_iter`` and
``t_soft`` generalise to a total element count and a baseline rate, from
which the familiar execution time and speedup re-emerge.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from .params import RATInput

__all__ = ["StreamingPrediction", "predict_streaming"]


@dataclass(frozen=True)
class StreamingPrediction:
    """Rates (elements/second) and the resulting sustained throughput."""

    rat: RATInput
    ingest_rate: float
    drain_rate: float
    compute_rate: float

    @property
    def element_rate(self) -> float:
        """Sustained end-to-end elements/second: the tightest of the three.

        In a stream all three stages operate concurrently by construction
        (streaming is the limiting case of perfect double buffering), so
        the pipeline runs at the slowest stage's rate.
        """
        return min(self.ingest_rate, self.drain_rate, self.compute_rate)

    @property
    def bottleneck(self) -> str:
        """Which stage limits: ``"ingest"``, ``"drain"`` or ``"compute"``."""
        rates = {
            "ingest": self.ingest_rate,
            "drain": self.drain_rate,
            "compute": self.compute_rate,
        }
        return min(rates, key=rates.__getitem__)

    def execution_time(self, total_elements: float | None = None) -> float:
        """Time to stream the whole problem.

        Defaults to the worksheet's total (``elements_in * n_iterations``).
        """
        if total_elements is None:
            total_elements = self.rat.total_elements
        if total_elements <= 0:
            raise ParameterError(
                f"total_elements must be positive, got {total_elements}"
            )
        return total_elements / self.element_rate

    def speedup(self, total_elements: float | None = None) -> float:
        """Speedup vs. the software baseline over the same problem."""
        return self.rat.software.t_soft / self.execution_time(total_elements)


def predict_streaming(rat: RATInput) -> StreamingPrediction:
    """Run the streaming-adjusted throughput analysis.

    Output elements may be zero (a sink-style kernel); the drain rate is
    then unbounded and never limits.
    """
    bytes_in_per_element = rat.dataset.bytes_per_element
    ingest = rat.communication.write_bandwidth / bytes_in_per_element
    if rat.dataset.elements_out == 0:
        drain = float("inf")
    else:
        # Results per input element: elements_out/elements_in output
        # elements must drain for each input element consumed.
        out_bytes_per_input_element = (
            rat.dataset.bytes_out / rat.dataset.elements_in
        )
        drain = rat.communication.read_bandwidth / out_bytes_per_input_element
    compute = rat.computation.ops_per_second / rat.computation.ops_per_element
    return StreamingPrediction(
        rat=rat,
        ingest_rate=ingest,
        drain_rate=drain,
        compute_rate=compute,
    )
