"""RAT core: the paper's primary contribution.

Submodules
----------
``params``
    The worksheet input schema (paper Table 1).
``throughput``
    Equations (1)-(11): communication/computation times, RC execution
    time under single/double buffering, speedup, utilizations.
``batch``
    Struct-of-arrays evaluation of the same equations over thousands to
    millions of design points per call (the exploration fast path).
``plan``
    Compiled prediction plans: bind a worksheet once, pre-size buffers,
    and run the equations as a fused tiled kernel with bitwise parity
    to ``batch`` (the serve/explore steady-state path).
``buffering``
    Overlap scenarios of Figure 2 and analytic timeline construction.
``worksheet``
    The user-facing RAT worksheet: clock sweeps producing performance
    tables in the style of the paper's Tables 3, 6 and 9.
``goalseek``
    Inverse analyses: solve for the throughput_proc (or clock, alpha,
    block size) required to hit a desired speedup.
``methodology``
    The Figure 1 state machine: throughput, precision, and resource
    tests applied iteratively over candidate designs.
``precision``
    Fixed-point formats, quantization error, minimal-bitwidth search.
``resources``
    Operator-level resource estimation against a device's capacities.
``composite`` / ``streaming``
    Extensions the paper lists as future work: multi-kernel
    applications, multi-FPGA scaling, and streaming designs.
"""

from .batch import BatchInput, BatchPrediction, batch_predict, mark_rows_valid
from .buffering import BufferingMode, OverlapTimeline, TimelineSegment
from .goalseek import (
    required_alpha,
    required_clock,
    required_throughput_proc,
    max_achievable_speedup,
)
from .lint import LintCode, LintWarning, lint_worksheet
from .power import DEFAULT_POWER_MODEL, PowerEstimate, PowerModel, estimate_power
from .params import (
    CommunicationParams,
    ComputationParams,
    DatasetParams,
    RATInput,
    SoftwareParams,
)
from .plan import PlanCache, PredictionPlan, compile_plan, shared_plan
from .throughput import ThroughputPrediction, predict
from .worksheet import PerformanceTable, RATWorksheet

__all__ = [
    "BatchInput",
    "BatchPrediction",
    "BufferingMode",
    "batch_predict",
    "DEFAULT_POWER_MODEL",
    "PowerEstimate",
    "PowerModel",
    "CommunicationParams",
    "ComputationParams",
    "DatasetParams",
    "LintCode",
    "LintWarning",
    "OverlapTimeline",
    "PerformanceTable",
    "PlanCache",
    "PredictionPlan",
    "RATInput",
    "RATWorksheet",
    "SoftwareParams",
    "ThroughputPrediction",
    "TimelineSegment",
    "compile_plan",
    "estimate_power",
    "lint_worksheet",
    "mark_rows_valid",
    "max_achievable_speedup",
    "predict",
    "shared_plan",
    "required_alpha",
    "required_clock",
    "required_throughput_proc",
]
