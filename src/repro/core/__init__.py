"""RAT core: the paper's primary contribution.

Submodules
----------
``params``
    The worksheet input schema (paper Table 1).
``throughput``
    Equations (1)-(11): communication/computation times, RC execution
    time under single/double buffering, speedup, utilizations.
``batch``
    Struct-of-arrays evaluation of the same equations over thousands to
    millions of design points per call (the exploration fast path).
``buffering``
    Overlap scenarios of Figure 2 and analytic timeline construction.
``worksheet``
    The user-facing RAT worksheet: clock sweeps producing performance
    tables in the style of the paper's Tables 3, 6 and 9.
``goalseek``
    Inverse analyses: solve for the throughput_proc (or clock, alpha,
    block size) required to hit a desired speedup.
``methodology``
    The Figure 1 state machine: throughput, precision, and resource
    tests applied iteratively over candidate designs.
``precision``
    Fixed-point formats, quantization error, minimal-bitwidth search.
``resources``
    Operator-level resource estimation against a device's capacities.
``composite`` / ``streaming``
    Extensions the paper lists as future work: multi-kernel
    applications, multi-FPGA scaling, and streaming designs.
"""

from .batch import BatchInput, BatchPrediction, batch_predict
from .buffering import BufferingMode, OverlapTimeline, TimelineSegment
from .goalseek import (
    required_alpha,
    required_clock,
    required_throughput_proc,
    max_achievable_speedup,
)
from .lint import LintCode, LintWarning, lint_worksheet
from .power import DEFAULT_POWER_MODEL, PowerEstimate, PowerModel, estimate_power
from .params import (
    CommunicationParams,
    ComputationParams,
    DatasetParams,
    RATInput,
    SoftwareParams,
)
from .throughput import ThroughputPrediction, predict
from .worksheet import PerformanceTable, RATWorksheet

__all__ = [
    "BatchInput",
    "BatchPrediction",
    "BufferingMode",
    "batch_predict",
    "DEFAULT_POWER_MODEL",
    "PowerEstimate",
    "PowerModel",
    "CommunicationParams",
    "ComputationParams",
    "DatasetParams",
    "LintCode",
    "LintWarning",
    "OverlapTimeline",
    "PerformanceTable",
    "RATInput",
    "RATWorksheet",
    "SoftwareParams",
    "ThroughputPrediction",
    "TimelineSegment",
    "estimate_power",
    "lint_worksheet",
    "max_achievable_speedup",
    "predict",
    "required_alpha",
    "required_clock",
    "required_throughput_proc",
]
