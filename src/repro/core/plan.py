"""Compiled prediction plans: the Equations (1)-(11) hot path, fused.

:func:`repro.core.batch.batch_predict` is already vectorized, but every
call still re-derives the equation dataflow from scratch: it allocates
nine fresh intermediate columns (at a million rows each is 8 MB, so the
allocator hands back new mmap'd pages whose first-touch faults dominate
the runtime), streams every column through memory once per equation
pass, and re-validates unchecked batches.  For callers that evaluate the
*same shape of work* thousands of times — serve's micro-batcher,
explore's chunk workers, the analysis sweeps — that per-call overhead is
pure waste.

A :class:`PredictionPlan` pays those costs once, at compile time:

* **Buffers are pre-sized.**  The eight result columns plus the kernel's
  scratch are allocated for a declared ``capacity`` (growable; growth is
  counted on ``plan.buffer_grows``).  A steady-state ``evaluate`` call
  performs **zero array allocations** — every ufunc writes into a view
  of a plan-owned buffer.
* **The equation passes are fused.**  Instead of one full-column sweep
  per equation, the kernel walks the batch in cache-sized *tiles* and
  runs the entire Eq (1)-(11) chain on each tile while it is hot in L2.
  Each input column is read from memory once and each result column
  written once — ~3 effective sweeps over the data instead of ~17.
  Columns the staging layer marked ``broadcast`` (constant across the
  batch, the common case for ``BatchInput.from_base`` spaces) are not
  streamed at all: the kernel reads them once as scalars and folds
  scalar-scalar products outside the tile loop.
* **The worksheet binds once.**  A plan optionally freezes a base
  :class:`~repro.core.params.RATInput` (validated by construction);
  :meth:`PredictionPlan.batch` then stages derived batches without
  re-touching the scalar dataclasses, and :class:`PlanCache` /
  :func:`shared_plan` key compiled plans by ``(base, dtype)`` so hot
  consumers reuse them across calls and processes.

Correctness contract — **bitwise parity**: in the default float64 mode,
:meth:`PredictionPlan.evaluate` applies the exact ufuncs of
:func:`~repro.core.batch.batch_predict` in the exact per-element
operation order (tiling never reorders the arithmetic applied to any
single row), so every result column is IEEE-754-identical to the
uncompiled path — which is itself bitwise-equal to scalar ``predict``.
Unchecked (``check=False``) batches are re-validated with the same rule
set and raise the same ``ParameterError`` text, so the PR 3 quarantine
machinery behaves identically through a plan.

The opt-in ``dtype=np.float32`` mode halves buffer traffic by casting
inputs into plan-owned float32 columns and running the same fused kernel
in single precision.  It is **excluded from the bitwise contract**: with
~6 rounded operations between inputs and any output, results track the
float64 path to within a few float32 ulps (bounded in
``tests/core/test_plan.py``; see ``docs/performance.md`` for the
documented bound and when the trade-off is worth it).

Observability: compilation runs under a ``plan.compile`` span and counts
on ``plan.compiles``; every evaluation records a ``plan.evaluate`` span,
the ``plan.evaluate_seconds`` histogram, and ``plan.evaluates`` /
``plan.points`` counters.  Plans also maintain the batch engine's
``throughput.predictions`` / ``throughput.speedup`` metrics so swapping
``batch_predict`` for a plan does not silently dim existing dashboards.

Thread safety: ``evaluate`` serializes on an internal lock (numpy
releases the GIL mid-ufunc, so unsynchronized callers could interleave
tile writes).  The returned columns are *views into plan buffers* by
default — valid until the next ``evaluate`` on the same plan.  Callers
that retain results across calls (or share a plan between threads) pass
``copy=True``, which snapshots the columns while still inside the lock.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Mapping

import numpy as np

from ..errors import ParameterError
from ..obs import get_metrics, get_tracer
from .batch import _COLUMNS, BatchInput, BatchPrediction
from .buffering import BufferingMode
from .params import RATInput

__all__ = [
    "DEFAULT_TILE",
    "PlanCache",
    "PredictionPlan",
    "compile_plan",
    "shared_plan",
]

#: Rows per kernel tile.  ~21 live views of this length (11 inputs,
#: 8 results, 2 scratch) must stay resident while a tile is processed:
#: 8192 float64 rows keep the working set around 1.3 MB — inside L2 on
#: anything current — while leaving each ufunc call long enough that
#: numpy dispatch overhead stays negligible.
DEFAULT_TILE = 8192

#: Result columns, in :class:`~repro.core.batch.BatchPrediction` order.
_RESULT_COLUMNS = (
    "t_input",
    "t_output",
    "t_comm",
    "t_comp",
    "t_rc",
    "speedup",
    "util_comp",
    "util_comm",
)

#: Supported compute dtypes.  float64 carries the bitwise-parity
#: contract; float32 is the documented-ulp-bound fast mode.
_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


class PredictionPlan:
    """One compiled evaluator for Equations (1)-(11).

    ``base`` optionally binds (and freezes) a worksheet for
    :meth:`batch` staging and cache keying; ``capacity`` pre-sizes the
    result buffers (0 defers allocation to the first evaluate);
    ``dtype`` selects float64 (bitwise-parity) or float32 (fast,
    ulp-bounded) arithmetic; ``tile`` is the fusion granularity.

    Compile once, evaluate many: construction is the expensive step
    (buffer allocation, worksheet freeze, a ``plan.compile`` span) and
    is counted on ``plan.compiles`` — hot paths hold plans in a
    :class:`PlanCache` precisely so that counter stays flat under load.
    """

    def __init__(
        self,
        base: RATInput | None = None,
        *,
        capacity: int = 0,
        dtype: object = np.float64,
        tile: int = DEFAULT_TILE,
    ) -> None:
        if capacity < 0:
            raise ParameterError(f"capacity must be >= 0, got {capacity}")
        if tile < 1:
            raise ParameterError(f"tile must be >= 1, got {tile}")
        self.dtype = np.dtype(dtype)
        if self.dtype not in _DTYPES:
            raise ParameterError(
                f"plan dtype must be float64 or float32, got {self.dtype}"
            )
        self.base = base
        self.tile = int(tile)
        self.capacity = 0
        self.grows = 0
        self.evaluations = 0
        self._lock = threading.Lock()
        #: Frozen SI scalars of the bound worksheet (None when unbound):
        #: the values :meth:`batch` broadcasts, captured once at compile
        #: time so staging never re-walks the parameter dataclasses.
        self.frozen: Mapping[str, float] | None = None
        if base is not None:
            self.frozen = {
                "elements_in": float(base.dataset.elements_in),
                "elements_out": float(base.dataset.elements_out),
                "bytes_per_element": float(base.dataset.bytes_per_element),
                "ideal_bandwidth": float(base.communication.ideal_bandwidth),
                "alpha_write": float(base.communication.alpha_write),
                "alpha_read": float(base.communication.alpha_read),
                "ops_per_element": float(base.computation.ops_per_element),
                "throughput_proc": float(base.computation.throughput_proc),
                "clock_hz": float(base.computation.clock_hz),
                "t_soft": float(base.software.t_soft),
                "n_iterations": float(base.software.n_iterations),
            }
        with get_tracer().span(
            "plan.compile",
            {
                "capacity": int(capacity),
                "dtype": self.dtype.name,
                "tile": self.tile,
                "worksheet": base.name if base is not None else "",
            },
            "plan",
        ):
            self._out: dict[str, np.ndarray] = {
                name: np.empty(0, dtype=self.dtype)
                for name in _RESULT_COLUMNS
            }
            #: float32 mode stages inputs through plan-owned casts; the
            #: float64 kernel reads the batch columns directly.
            self._cast: dict[str, np.ndarray] | None = (
                None
                if self.dtype == np.float64
                else {
                    name: np.empty(0, dtype=self.dtype) for name in _COLUMNS
                }
            )
            self._scratch = np.empty(self.tile, dtype=self.dtype)
            self._zero_mask = np.empty(self.tile, dtype=bool)
            if capacity:
                self._grow(int(capacity), count=False)
        get_metrics().counter("plan.compiles").inc()

    # ---- buffers -----------------------------------------------------------

    def _grow(self, capacity: int, *, count: bool = True) -> None:
        """(Re)allocate result/cast buffers for ``capacity`` rows."""
        self._out = {
            name: np.empty(capacity, dtype=self.dtype)
            for name in _RESULT_COLUMNS
        }
        if self._cast is not None:
            self._cast = {
                name: np.empty(capacity, dtype=self.dtype)
                for name in _COLUMNS
            }
        self.capacity = capacity
        if count:
            self.grows += 1
            get_metrics().counter("plan.buffer_grows").inc()

    def _ensure_capacity(self, n: int) -> None:
        """Grow geometrically so k growing evaluates cost O(log k) allocs."""
        if n <= self.capacity:
            return
        self._grow(max(n, self.capacity * 2))

    # ---- staging -----------------------------------------------------------

    def batch(
        self,
        n: int,
        overrides: Mapping[str, object] | None = None,
        names: tuple[str, ...] = (),
        *,
        check: bool = True,
    ) -> BatchInput:
        """``n`` copies of the bound worksheet with columns overridden.

        Sugar for :meth:`BatchInput.from_base` over the plan's frozen
        base; requires the plan to have been compiled with one.
        """
        if self.base is None:
            raise ParameterError(
                "plan.batch requires a plan compiled with a base worksheet"
            )
        return BatchInput.from_base(
            self.base, n, overrides, names, check=check
        )

    # ---- evaluation --------------------------------------------------------

    def evaluate(
        self,
        batch: BatchInput,
        mode: BufferingMode = BufferingMode.SINGLE,
        *,
        copy: bool = False,
    ) -> BatchPrediction:
        """Equations (1)-(11) over ``batch`` through the fused kernel.

        Drop-in for :func:`~repro.core.batch.batch_predict`: float64
        plans return bitwise-identical columns, unchecked batches are
        re-validated with identical diagnostics, and the throughput
        metrics advance the same way.  Result columns are views into
        plan buffers unless ``copy=True`` — retain-or-share callers
        must copy (see the module docstring).
        """
        if mode not in (BufferingMode.SINGLE, BufferingMode.DOUBLE):
            raise ParameterError(f"unknown buffering mode {mode!r}")
        if not batch.checked:
            # Same gate as batch_predict: invalid rows must raise, not
            # flow into the divisions as silent inf/NaN.  _validate
            # raises the byte-identical scalar diagnostic.
            batch._validate()
        n = len(batch)
        started = time.perf_counter()
        with self._lock:
            self._ensure_capacity(n)
            with get_tracer().span(
                "plan.evaluate",
                {"points": n, "mode": mode.value, "dtype": self.dtype.name},
                "plan",
            ):
                self._kernel(batch, mode, n)
                if copy:
                    columns = {
                        name: self._out[name][:n].copy()
                        for name in _RESULT_COLUMNS
                    }
                else:
                    columns = {
                        name: self._out[name][:n] for name in _RESULT_COLUMNS
                    }
            self.evaluations += 1
        prediction = BatchPrediction(batch=batch, mode=mode, **columns)
        metrics = get_metrics()
        metrics.counter("plan.evaluates").inc()
        metrics.counter("plan.points").inc(n)
        metrics.histogram("plan.evaluate_seconds").observe(
            time.perf_counter() - started
        )
        # Metric parity with batch_predict: consumers that switched to a
        # plan keep feeding the same throughput instruments.
        metrics.counter("throughput.predictions").inc(n)
        metrics.histogram("throughput.speedup").observe_many(
            prediction.speedup
        )
        return prediction

    def _resolve_columns(
        self, batch: BatchInput, n: int
    ) -> dict[str, object]:
        """Stage inputs: scalars for broadcast columns, arrays otherwise.

        A column the staging layer marked ``broadcast`` holds one value
        in every row, so the kernel reads it once as a scalar instead of
        streaming ``n`` copies — on ``from_base``-staged spaces (a few
        swept axes over a frozen worksheet) that removes most of the
        input traffic.  float32 plans cast per-row columns into
        plan-owned buffers here (the only non-result writes the kernel
        performs; still allocation-free).
        """
        cast = self._cast
        cols: dict[str, object] = {}
        for name in _COLUMNS:
            column = getattr(batch, name)
            if n and name in batch.broadcast:
                cols[name] = (
                    np.float32(column[0]) if cast is not None
                    else float(column[0])
                )
            elif cast is not None:
                cast[name][:n] = column
                cols[name] = cast[name]
            else:
                cols[name] = column
        return cols

    def _kernel(self, batch: BatchInput, mode: BufferingMode, n: int) -> None:
        """The fused tiled kernel.  Writes results into ``self._out[:n]``.

        Per row, this applies *operation-for-operation* the body of
        ``batch_predict`` (see that function for the equation mapping);
        only the storage differs — intermediates land in one tile-sized
        scratch view instead of nine fresh full-length columns.  Every
        operation is elementwise, so neither tiling the rows nor folding
        a product of two broadcast scalars (the same IEEE-754 multiply,
        applied once instead of per row) can change any row's
        arithmetic: the float64 results match bitwise.
        """
        out = self._out
        cols = self._resolve_columns(batch, n)
        op_iteration = (
            np.add if mode is BufferingMode.SINGLE else np.maximum
        )

        def is_row(value: object) -> bool:
            return isinstance(value, np.ndarray)

        def fold(a: object, b: object) -> object | None:
            """``a*b`` now, if both sides are scalars (else: per tile)."""
            return None if (is_row(a) or is_row(b)) else a * b

        e_in = cols["elements_in"]
        e_out = cols["elements_out"]
        bpe = cols["bytes_per_element"]
        bw = cols["ideal_bandwidth"]
        aw = cols["alpha_write"]
        ar = cols["alpha_read"]
        bytes_in_c = fold(e_in, bpe)
        write_bw_c = fold(aw, bw)
        bytes_out_c = fold(e_out, bpe)
        read_bw_c = fold(ar, bw)
        total_ops_c = fold(e_in, cols["ops_per_element"])
        ops_per_sec_c = fold(cols["clock_hz"], cols["throughput_proc"])
        zero_all_outputs = (not is_row(e_out)) and e_out == 0
        for lo in range(0, n, self.tile):
            hi = min(lo + self.tile, n)
            t = slice(lo, hi)
            s = self._scratch[: hi - lo]

            def at(value: object) -> object:
                return value[t] if is_row(value) else value

            t_input = out["t_input"][t]
            t_output = out["t_output"][t]
            t_comm = out["t_comm"][t]
            t_comp = out["t_comp"][t]
            t_rc = out["t_rc"][t]
            # Equation (2): bytes_in / write_bandwidth.
            if bytes_in_c is None:
                np.multiply(at(e_in), at(bpe), out=t_input)
            if write_bw_c is None:
                np.multiply(at(aw), at(bw), out=s)
            np.divide(
                bytes_in_c if bytes_in_c is not None else t_input,
                write_bw_c if write_bw_c is not None else s,
                out=t_input,
            )
            # Equation (3), with the scalar path's zero-output short-circuit.
            if bytes_out_c is None:
                np.multiply(at(e_out), at(bpe), out=t_output)
            if read_bw_c is None:
                np.multiply(at(ar), at(bw), out=s)
            np.divide(
                bytes_out_c if bytes_out_c is not None else t_output,
                read_bw_c if read_bw_c is not None else s,
                out=t_output,
            )
            if is_row(e_out):
                z = self._zero_mask[: hi - lo]
                np.equal(at(e_out), 0, out=z)
                np.copyto(t_output, 0.0, where=z)
            elif zero_all_outputs:
                np.copyto(t_output, 0.0)
            # Equations (1), (4).
            np.add(t_input, t_output, out=t_comm)
            if total_ops_c is None:
                np.multiply(at(e_in), at(cols["ops_per_element"]), out=t_comp)
            if ops_per_sec_c is None:
                np.multiply(
                    at(cols["clock_hz"]),
                    at(cols["throughput_proc"]),
                    out=s,
                )
            np.divide(
                total_ops_c if total_ops_c is not None else t_comp,
                ops_per_sec_c if ops_per_sec_c is not None else s,
                out=t_comp,
            )
            # Equations (5)-(11): s becomes t_iteration.
            op_iteration(t_comm, t_comp, out=s)
            np.multiply(at(cols["n_iterations"]), s, out=t_rc)
            np.divide(at(cols["t_soft"]), t_rc, out=out["speedup"][t])
            np.divide(t_comp, s, out=out["util_comp"][t])
            np.divide(t_comm, s, out=out["util_comm"][t])


def compile_plan(
    base: RATInput | None = None,
    *,
    capacity: int = 0,
    dtype: object = np.float64,
    tile: int = DEFAULT_TILE,
) -> PredictionPlan:
    """Compile a :class:`PredictionPlan` (see the class for parameters)."""
    return PredictionPlan(base, capacity=capacity, dtype=dtype, tile=tile)


class PlanCache:
    """A small LRU of compiled plans, keyed by ``(base worksheet, dtype)``.

    The reuse backbone for hot consumers: explore's worker processes and
    the analysis helpers fetch through a cache so repeated work against
    the same frozen worksheet compiles exactly once per process.
    Thread-safe; eviction drops the least-recently-fetched plan.
    """

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize < 1:
            raise ParameterError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._plans: OrderedDict[tuple, PredictionPlan] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._plans)

    def get(
        self,
        base: RATInput | None = None,
        *,
        dtype: object = np.float64,
        capacity: int = 0,
        tile: int = DEFAULT_TILE,
    ) -> PredictionPlan:
        """Fetch the cached plan for ``(base, dtype)``, compiling on miss.

        ``capacity``/``tile`` only shape a newly compiled plan; a cache
        hit returns the existing plan as-is (its buffers grow on demand).
        """
        key = (base, np.dtype(dtype).name)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                return plan
        # Compile outside the lock: construction allocates and traces.
        plan = PredictionPlan(base, capacity=capacity, dtype=dtype, tile=tile)
        with self._lock:
            existing = self._plans.get(key)
            if existing is not None:  # lost a compile race: reuse theirs
                self._plans.move_to_end(key)
                return existing
            self._plans[key] = plan
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
        return plan

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()


#: Process-global plan reuse for callers without a natural place to hold
#: a plan (the analysis sweeps, explore's worker processes).  Keyed by
#: worksheet identity, so distinct studies do not thrash one plan's
#: buffers — and sized generously enough that a typical process never
#: evicts.
_SHARED_CACHE = PlanCache(maxsize=16)


def shared_plan(
    base: RATInput | None = None, *, dtype: object = np.float64
) -> PredictionPlan:
    """The process-wide cached plan for ``(base, dtype)``.

    Results evaluated through a shared plan are views into shared
    buffers: materialize (or pass ``copy=True``) before the next
    evaluate from the same call site may run.
    """
    return _SHARED_CACHE.get(base, dtype=dtype)
