"""Worksheet linting: catch the mistakes the paper's case studies made.

RAT's equations are trivially easy to feed garbage.  The linter encodes
the failure modes documented in the paper (and a few physical sanity
checks) as warnings on a worksheet + platform pair:

* ``SMALL_TRANSFERS`` — the block size sits in the overhead-dominated
  region of the platform's alpha curve *and* many iterations will repeat
  the cost: the 1-D PDF's 4.5x communication miss.
* ``ALPHA_OPTIMISTIC`` — the worksheet alpha exceeds what the platform's
  tabulated curve sustains at this transfer size: the 2-D PDF's 6x miss.
* ``CLOCK_ABOVE_DEVICE`` — the assumed clock exceeds the device's
  practical fabric ceiling.
* ``FEW_ITERATIONS_DB`` — double buffering assumed but too few
  iterations for the startup transient to amortise (the paper's
  steady-state caveat on Equations 10-11).
* ``THROUGHPUT_EXCEEDS_OPS`` — ``throughput_proc`` above
  ``ops_per_element``: the design would finish an element in under a
  cycle, which the element/operation bookkeeping cannot mean.
* ``OUTPUT_DOMINATES`` — output volume dwarfs input: consider whether
  results can stay on-chip (the 1-D PDF's end-of-run readback trick).

Each warning carries an explanation and a suggestion; none is fatal —
RAT remains a designer-judgement tool.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ParameterError
from ..platforms.platform import RCPlatform
from .buffering import BufferingMode
from .params import RATInput

__all__ = ["LintCode", "LintWarning", "lint_worksheet"]


class LintCode(str, enum.Enum):
    """Machine-readable warning identifiers."""

    SMALL_TRANSFERS = "small-transfers"
    ALPHA_OPTIMISTIC = "alpha-optimistic"
    CLOCK_ABOVE_DEVICE = "clock-above-device"
    FEW_ITERATIONS_DB = "few-iterations-db"
    THROUGHPUT_EXCEEDS_OPS = "throughput-exceeds-ops"
    OUTPUT_DOMINATES = "output-dominates"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class LintWarning:
    """One finding: code, explanation, suggestion."""

    code: LintCode
    message: str
    suggestion: str

    def describe(self) -> str:
        """Render as ``[code] message (suggestion)``."""
        return f"[{self.code.value}] {self.message} — {self.suggestion}"


# Transfers below this fraction of the platform's asymptotic alpha are
# considered overhead-dominated.
_SMALL_TRANSFER_ALPHA_FRACTION = 0.6
# Iterations below this make the DB steady-state assumption shaky.
_MIN_DB_ITERATIONS = 10
# Alpha optimism slack: worksheet alpha may exceed the curve by this
# relative margin before warning (curves are themselves estimates).
_ALPHA_SLACK = 0.05


def lint_worksheet(
    rat: RATInput,
    platform: RCPlatform | None = None,
    mode: BufferingMode = BufferingMode.SINGLE,
) -> list[LintWarning]:
    """Check one worksheet (optionally against a platform's curves).

    Returns warnings in a stable order; an empty list means no findings.
    Platform-dependent checks are skipped when ``platform`` is None.
    """
    warnings: list[LintWarning] = []

    # --- pure worksheet checks ------------------------------------------------
    if rat.computation.throughput_proc > rat.computation.ops_per_element:
        warnings.append(LintWarning(
            code=LintCode.THROUGHPUT_EXCEEDS_OPS,
            message=(
                f"throughput_proc ({rat.computation.throughput_proc:g} "
                f"ops/cycle) exceeds ops_per_element "
                f"({rat.computation.ops_per_element:g})"
            ),
            suggestion=(
                "a fully pipelined design peaks at one element per cycle, "
                "i.e. throughput_proc = ops_per_element; check the "
                "operation scope on both sides"
            ),
        ))

    if mode is BufferingMode.DOUBLE and (
        rat.software.n_iterations < _MIN_DB_ITERATIONS
    ):
        warnings.append(LintWarning(
            code=LintCode.FEW_ITERATIONS_DB,
            message=(
                f"double buffering assumed with only "
                f"{rat.software.n_iterations} iterations"
            ),
            suggestion=(
                "Equation (6) and the DB utilizations assume steady state; "
                "with few iterations the startup transient is material — "
                "use the single-buffered equations or the simulator"
            ),
        ))

    if rat.dataset.bytes_out > 10 * rat.dataset.bytes_in:
        warnings.append(LintWarning(
            code=LintCode.OUTPUT_DOMINATES,
            message=(
                f"output volume ({rat.dataset.bytes_out:g} B/iter) is "
                f">10x the input ({rat.dataset.bytes_in:g} B/iter)"
            ),
            suggestion=(
                "consider accumulating results on-chip and reading back "
                "once (the paper's 1-D PDF does this), or recheck "
                "elements_out"
            ),
        ))

    if platform is None:
        return warnings

    # --- platform-dependent checks ---------------------------------------------
    device = platform.device
    if rat.computation.clock_hz > device.max_clock_hz:
        warnings.append(LintWarning(
            code=LintCode.CLOCK_ABOVE_DEVICE,
            message=(
                f"assumed clock {rat.computation.clock_mhz:g} MHz exceeds "
                f"the {device.name}'s practical ceiling "
                f"{device.max_clock_hz / 1e6:g} MHz"
            ),
            suggestion="sweep clocks the fabric can plausibly close instead",
        ))

    for direction, nbytes, worksheet_alpha, lookup in (
        ("write", rat.dataset.bytes_in, rat.communication.alpha_write,
         platform.alpha_write),
        ("read", rat.dataset.bytes_out, rat.communication.alpha_read,
         platform.alpha_read),
    ):
        if nbytes <= 0:
            continue
        curve_alpha = lookup(nbytes)
        if worksheet_alpha > curve_alpha * (1 + _ALPHA_SLACK):
            warnings.append(LintWarning(
                code=LintCode.ALPHA_OPTIMISTIC,
                message=(
                    f"alpha_{direction} {worksheet_alpha:g} exceeds the "
                    f"platform's tabulated {curve_alpha:.3f} at "
                    f"{nbytes:g} B transfers"
                ),
                suggestion=(
                    "re-run the microbenchmark at the actual transfer size "
                    "(alpha falls steeply for small transfers)"
                ),
            ))

    asymptote = platform.write_alpha.max_alpha()
    if (
        rat.software.n_iterations >= _MIN_DB_ITERATIONS
        and platform.alpha_write(rat.dataset.bytes_in)
        < _SMALL_TRANSFER_ALPHA_FRACTION * asymptote
    ):
        warnings.append(LintWarning(
            code=LintCode.SMALL_TRANSFERS,
            message=(
                f"{rat.software.n_iterations} iterations of "
                f"{rat.dataset.bytes_in:g} B transfers sit in the "
                "overhead-dominated region of the platform's alpha curve"
            ),
            suggestion=(
                "batch more elements per transfer, or expect "
                "application-visible alpha well below the microbenchmark "
                "(the paper's 1-D PDF measured 4.5x worse)"
            ),
        ))

    return warnings
