"""Power estimation (extension).

The paper's introduction frames power as a first-class acceptance
criterion — "it is critical to consider whether the chosen application
architecture and FPGA platform will meet the speed, area, and power
requirements of the project", and the embedded community "might simply
want FPGA performance to parallel a traditional processor since savings
could come in the form of reduced power usage" — but its evaluation stops
at throughput/precision/resources.  This module supplies the missing leg
at the same magnitude-level fidelity as the resource test:

``P = P_static + f_clk * (e_logic * logic + e_dsp * dsp + e_bram * bram)``

with per-resource dynamic energy coefficients (J per resource-unit per
cycle at a nominal toggle rate) and a device static floor.  Energy per
run then compares against a host-CPU baseline to produce the
energy-savings factor the embedded scenario cares about, even when the
speedup itself is modest.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from .resources.model import ResourceVector

__all__ = ["PowerModel", "PowerEstimate", "DEFAULT_POWER_MODEL"]


@dataclass(frozen=True)
class PowerModel:
    """Magnitude-level FPGA power coefficients.

    Parameters
    ----------
    static_w:
        Device static power (leakage + always-on clocking), watts.
    logic_j_per_cycle:
        Dynamic energy per logic unit (slice/ALUT) per cycle at the
        nominal toggle rate, joules.
    dsp_j_per_cycle / bram_j_per_cycle:
        The same for DSP blocks and BRAM tiles.
    toggle_rate:
        Fraction of the design actively switching each cycle; scales all
        dynamic terms.
    """

    static_w: float = 1.5
    logic_j_per_cycle: float = 4.0e-12
    dsp_j_per_cycle: float = 2.5e-11
    bram_j_per_cycle: float = 2.0e-11
    toggle_rate: float = 0.25

    def __post_init__(self) -> None:
        for name in ("static_w", "logic_j_per_cycle", "dsp_j_per_cycle",
                     "bram_j_per_cycle"):
            if getattr(self, name) < 0:
                raise ParameterError(f"{name} must be >= 0")
        if not 0 < self.toggle_rate <= 1:
            raise ParameterError(
                f"toggle_rate must be in (0, 1], got {self.toggle_rate}"
            )

    def dynamic_power(self, demand: ResourceVector, clock_hz: float) -> float:
        """Dynamic watts for a resource demand at a clock."""
        if clock_hz <= 0:
            raise ParameterError(f"clock_hz must be positive, got {clock_hz}")
        per_cycle = (
            self.logic_j_per_cycle * demand.logic
            + self.dsp_j_per_cycle * demand.dsp
            + self.bram_j_per_cycle * demand.bram_blocks
        )
        return per_cycle * self.toggle_rate * clock_hz

    def total_power(self, demand: ResourceVector, clock_hz: float) -> float:
        """Static + dynamic watts."""
        return self.static_w + self.dynamic_power(demand, clock_hz)


DEFAULT_POWER_MODEL = PowerModel()


@dataclass(frozen=True)
class PowerEstimate:
    """Power/energy comparison of an FPGA design against a host CPU.

    All inputs are magnitude-level; the derived properties answer the
    embedded scenario's question — does the migration save energy even if
    the speedup is unimpressive?
    """

    fpga_power_w: float
    t_rc: float
    host_power_w: float
    t_soft: float

    def __post_init__(self) -> None:
        for name in ("fpga_power_w", "t_rc", "host_power_w", "t_soft"):
            if getattr(self, name) <= 0:
                raise ParameterError(f"{name} must be positive")

    @property
    def fpga_energy_j(self) -> float:
        """FPGA joules for the whole application run."""
        return self.fpga_power_w * self.t_rc

    @property
    def host_energy_j(self) -> float:
        """Host-CPU joules for the software baseline."""
        return self.host_power_w * self.t_soft

    @property
    def energy_savings(self) -> float:
        """Host energy / FPGA energy: >1 means the migration saves energy.

        Equals ``speedup * (host_power / fpga_power)`` — energy savings
        persist even at speedup 1 when the FPGA draws less power, the
        paper's embedded break-even scenario.
        """
        return self.host_energy_j / self.fpga_energy_j

    @property
    def speedup(self) -> float:
        """Plain time speedup, for reference."""
        return self.t_soft / self.t_rc

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"FPGA {self.fpga_power_w:.1f} W x {self.t_rc:.3g} s = "
            f"{self.fpga_energy_j:.3g} J vs host {self.host_power_w:.0f} W x "
            f"{self.t_soft:.3g} s = {self.host_energy_j:.3g} J -> "
            f"{self.energy_savings:.1f}x energy savings "
            f"({self.speedup:.1f}x speedup)"
        )


def estimate_power(
    demand: ResourceVector,
    clock_hz: float,
    t_rc: float,
    *,
    t_soft: float,
    host_power_w: float = 95.0,
    model: PowerModel = DEFAULT_POWER_MODEL,
) -> PowerEstimate:
    """Convenience wrapper: demand + clock + times -> full estimate.

    ``host_power_w`` defaults to a 2007-era Xeon's ~95 W TDP, matching
    the paper's baseline hosts.
    """
    return PowerEstimate(
        fpga_power_w=model.total_power(demand, clock_hz),
        t_rc=t_rc,
        host_power_w=host_power_w,
        t_soft=t_soft,
    )
