"""Quantization of values and arrays into FPGA numeric formats.

Quantizing a software-precision (float64) signal into a candidate hardware
format is the first step of the precision test: the quantized signal is
then compared against the reference by :mod:`repro.core.precision.error`.

Supports the two rounding behaviours (round-to-nearest-even via
``np.round``, truncation toward negative infinity as produced by dropping
LSBs in hardware) and the two overflow behaviours (saturation, the safe
choice; two's-complement wrap-around, what unguarded hardware actually
does) so designers can see the catastrophic effect of wrap-around on
out-of-range data.
"""

from __future__ import annotations

import enum
from typing import overload

import numpy as np

from ...errors import PrecisionError
from .formats import FixedPointFormat, FloatFormat

__all__ = ["RoundingMode", "OverflowMode", "quantize", "quantize_array"]


class RoundingMode(str, enum.Enum):
    """How sub-LSB information is discarded."""

    NEAREST = "nearest"  # round half to even (np.round)
    TRUNCATE = "truncate"  # floor toward -inf (drop LSBs)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class OverflowMode(str, enum.Enum):
    """What happens to values outside the representable range."""

    SATURATE = "saturate"
    WRAP = "wrap"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def _quantize_fixed(
    values: np.ndarray,
    fmt: FixedPointFormat,
    rounding: RoundingMode,
    overflow: OverflowMode,
) -> np.ndarray:
    scaled = values * (2.0**fmt.frac_bits)
    if rounding is RoundingMode.NEAREST:
        integers = np.round(scaled)
    elif rounding is RoundingMode.TRUNCATE:
        integers = np.floor(scaled)
    else:  # pragma: no cover - enum exhaustive
        raise PrecisionError(f"unknown rounding mode {rounding!r}")

    lo = fmt.min_value * (2.0**fmt.frac_bits)
    hi = fmt.max_value * (2.0**fmt.frac_bits)
    if overflow is OverflowMode.SATURATE:
        integers = np.clip(integers, lo, hi)
    elif overflow is OverflowMode.WRAP:
        span = 2.0**fmt.total_bits
        integers = np.mod(integers - lo, span) + lo
    else:  # pragma: no cover - enum exhaustive
        raise PrecisionError(f"unknown overflow mode {overflow!r}")
    return integers * fmt.resolution


def _quantize_float(
    values: np.ndarray,
    fmt: FloatFormat,
    rounding: RoundingMode,
    overflow: OverflowMode,
) -> np.ndarray:
    result = np.array(values, dtype=np.float64, copy=True)
    finite = np.isfinite(result) & (result != 0.0)
    if np.any(finite):
        magnitudes = np.abs(result[finite])
        exponents = np.floor(np.log2(magnitudes))
        # Clamp to the normal range; values below min_normal flush to the
        # subnormal grid of the smallest exponent.
        min_exp = float(1 - fmt.bias)
        exponents = np.maximum(exponents, min_exp)
        scale = 2.0 ** (exponents - fmt.mantissa_bits)
        scaled = result[finite] / scale
        if rounding is RoundingMode.NEAREST:
            quantized = np.round(scaled)
        elif rounding is RoundingMode.TRUNCATE:
            quantized = np.trunc(scaled)
        else:  # pragma: no cover - enum exhaustive
            raise PrecisionError(f"unknown rounding mode {rounding!r}")
        result[finite] = quantized * scale
    # Overflow handling: floats saturate to +-max (there is no meaningful
    # wrap for floating point; WRAP maps to infinity like real hardware
    # overflow to the IEEE infinity encoding).
    over = np.abs(result) > fmt.max_value
    if np.any(over):
        if overflow is OverflowMode.SATURATE:
            result[over] = np.sign(result[over]) * fmt.max_value
        else:
            result[over] = np.sign(result[over]) * np.inf
    return result


@overload
def quantize(
    values: float,
    fmt: FixedPointFormat | FloatFormat,
    rounding: RoundingMode = ...,
    overflow: OverflowMode = ...,
) -> float: ...


@overload
def quantize(
    values: np.ndarray,
    fmt: FixedPointFormat | FloatFormat,
    rounding: RoundingMode = ...,
    overflow: OverflowMode = ...,
) -> np.ndarray: ...


def quantize(
    values,
    fmt,
    rounding: RoundingMode = RoundingMode.NEAREST,
    overflow: OverflowMode = OverflowMode.SATURATE,
):
    """Quantize a scalar or array into a numeric format.

    Returns the same shape as the input, as float64 values lying exactly
    on the format's representable grid (within the range limits implied by
    ``overflow``).
    """
    array = np.asarray(values, dtype=np.float64)
    if isinstance(fmt, FixedPointFormat):
        result = _quantize_fixed(array, fmt, rounding, overflow)
    elif isinstance(fmt, FloatFormat):
        result = _quantize_float(array, fmt, rounding, overflow)
    else:
        raise PrecisionError(f"unsupported format type {type(fmt).__name__}")
    if np.isscalar(values) or np.ndim(values) == 0:
        return float(result)
    return result


def quantize_array(
    values: np.ndarray,
    fmt: FixedPointFormat | FloatFormat,
    rounding: RoundingMode = RoundingMode.NEAREST,
    overflow: OverflowMode = OverflowMode.SATURATE,
) -> np.ndarray:
    """Array-typed alias of :func:`quantize` for call sites that want
    a guaranteed ndarray return type."""
    return np.asarray(quantize(np.asarray(values), fmt, rounding, overflow))
