"""Numeric format descriptions for FPGA datapaths.

Two families are modelled:

* :class:`FixedPointFormat` — signed/unsigned two's-complement Qm.n
  formats, the workhorse of FPGA arithmetic (the paper's PDF pipelines
  use 18-bit fixed point to fit one Xilinx 18x18 MAC per multiply);
* :class:`FloatFormat` — IEEE-style ``(exponent, mantissa)`` splits,
  covering both standard float32/float64 and the custom-width formats
  the FPGA literature explores.

Formats know their representable range, resolution, storage width, and —
for the resource test — how many ``DxD``-bit hardware multipliers a
product of two values in the format consumes on a device whose DSP
primitive is ``dsp_width_bits`` wide (e.g. two 18-bit multipliers for a
32-bit product on Virtex-4, as the paper notes in Section 3.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ...errors import PrecisionError

__all__ = ["FixedPointFormat", "FloatFormat", "float32", "float64"]


@dataclass(frozen=True)
class FixedPointFormat:
    """A two's-complement fixed-point format.

    Parameters
    ----------
    total_bits:
        Word length including the sign bit when ``signed``.
    frac_bits:
        Bits to the right of the binary point.  May be zero (pure
        integers) or equal to ``total_bits`` (pure fractions); may not be
        negative or exceed ``total_bits``.
    signed:
        Two's complement when True; unsigned otherwise.
    """

    total_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.total_bits < 1:
            raise PrecisionError(f"total_bits must be >= 1, got {self.total_bits}")
        if not 0 <= self.frac_bits <= self.total_bits:
            raise PrecisionError(
                f"frac_bits must be in [0, total_bits], got {self.frac_bits} "
                f"with total_bits={self.total_bits}"
            )
        if self.signed and self.total_bits < 2 and self.frac_bits == self.total_bits:
            # A signed format needs at least the sign bit outside the
            # fraction to represent any non-negative magnitude... actually
            # Q0.1 signed (1 bit) can only hold {0, -0.5}; we allow >= 2.
            raise PrecisionError(
                "signed formats need total_bits >= 2 when fully fractional"
            )

    @property
    def int_bits(self) -> int:
        """Bits to the left of the binary point (excluding sign)."""
        return self.total_bits - self.frac_bits - (1 if self.signed else 0)

    @property
    def resolution(self) -> float:
        """Weight of the least-significant bit (quantization step)."""
        return 2.0**-self.frac_bits

    @property
    def min_value(self) -> float:
        """Most negative representable value (0 for unsigned)."""
        if not self.signed:
            return 0.0
        return -(2.0 ** (self.total_bits - 1)) * self.resolution

    @property
    def max_value(self) -> float:
        """Most positive representable value."""
        levels = 2 ** (self.total_bits - 1) if self.signed else 2**self.total_bits
        return (levels - 1) * self.resolution

    @property
    def storage_bits(self) -> int:
        """Bits as stored/transferred (same as total_bits for fixed point)."""
        return self.total_bits

    @property
    def storage_bytes(self) -> int:
        """Bytes per element when communicated, rounded up to whole bytes.

        Note the paper's 1-D PDF communicates 18-bit values in 32-bit
        words because the *channel* is 32-bit — communication padding is a
        platform property, so callers may override this with the channel
        word size (see ``DatasetParams.bytes_per_element``).
        """
        return (self.total_bits + 7) // 8

    def representable(self, value: float) -> bool:
        """True if ``value`` lies within the representable range."""
        return self.min_value <= value <= self.max_value

    def multipliers_required(self, dsp_width_bits: int = 18) -> int:
        """Hardware multipliers consumed by one product in this format.

        A ``W x W`` product on a device with ``D``-bit multiplier
        primitives tiles into ``ceil(W/D)^2`` primitives in the general
        case — matching the paper's "32-bit fixed-point multiplications on
        Xilinx V4 FPGAs require two dedicated 18-bit multipliers" once the
        partial-product at the top (sign) position is folded, which
        vendors implement as ``ceil(W/D) * ceil(W/D)`` minus shared
        corrections.  We use the vendor-observed rule: 1 primitive when
        ``W <= D``, else ``W <= 2D - 2`` (sign reuse) costs 2... in
        practice Xilinx maps 32x32 onto 2 DSP48s using the 48-bit
        post-adder.  The model: ``ceil(W / D) ** 2`` capped by the
        post-adder shortcut ``2 * ceil(W / (2 * D - 1))`` — min of both.
        """
        if dsp_width_bits < 2:
            raise PrecisionError(f"dsp_width_bits must be >= 2, got {dsp_width_bits}")
        width = self.total_bits
        if width <= dsp_width_bits:
            return 1
        tiles = math.ceil(width / dsp_width_bits) ** 2
        # Vendor post-adder chains let an N x N product up to ~2D-2 bits
        # use just 2 primitives (the paper's V4 32-bit example); beyond
        # that the full tiling applies (e.g. a 24-bit float mantissa on
        # Stratix-II 9-bit elements consumes a whole 36x36-mode block).
        if width <= 2 * dsp_width_bits - 2:
            return 2
        return tiles

    def describe(self) -> str:
        """Q-format style label, e.g. ``"Q9.8 (signed, 18-bit)"``."""
        sign = "signed" if self.signed else "unsigned"
        return f"Q{self.int_bits}.{self.frac_bits} ({sign}, {self.total_bits}-bit)"


@dataclass(frozen=True)
class FloatFormat:
    """An IEEE-754-style floating point format with custom field widths.

    Covers standard formats (``float32`` = 8-bit exponent, 23-bit
    mantissa) and the reduced formats explored by the bitwidth-analysis
    literature the paper cites ([3], [9]).
    """

    exponent_bits: int
    mantissa_bits: int

    def __post_init__(self) -> None:
        if self.exponent_bits < 2:
            raise PrecisionError(
                f"exponent_bits must be >= 2, got {self.exponent_bits}"
            )
        if self.mantissa_bits < 1:
            raise PrecisionError(
                f"mantissa_bits must be >= 1, got {self.mantissa_bits}"
            )

    @property
    def total_bits(self) -> int:
        """Storage width: sign + exponent + mantissa."""
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def storage_bits(self) -> int:
        """Alias for ``total_bits`` (uniform API with fixed point)."""
        return self.total_bits

    @property
    def storage_bytes(self) -> int:
        """Bytes per element when communicated, rounded up."""
        return (self.total_bits + 7) // 8

    @property
    def bias(self) -> int:
        """Exponent bias, IEEE convention."""
        return 2 ** (self.exponent_bits - 1) - 1

    @property
    def max_value(self) -> float:
        """Largest finite value."""
        max_exp = 2**self.exponent_bits - 2 - self.bias
        return (2 - 2.0**-self.mantissa_bits) * 2.0**max_exp

    @property
    def min_normal(self) -> float:
        """Smallest positive normal value."""
        return 2.0 ** (1 - self.bias)

    @property
    def epsilon(self) -> float:
        """Relative resolution: gap between 1.0 and the next value."""
        return 2.0**-self.mantissa_bits

    def representable(self, value: float) -> bool:
        """True if |value| fits within the finite range (or is zero)."""
        return value == 0.0 or abs(value) <= self.max_value

    def multipliers_required(self, dsp_width_bits: int = 18) -> int:
        """Hardware multipliers for one mantissa product.

        The mantissa multiply is ``(m+1) x (m+1)`` including the hidden
        bit; exponents add in plain logic.
        """
        mantissa_format = FixedPointFormat(
            total_bits=self.mantissa_bits + 1, frac_bits=0, signed=False
        )
        return mantissa_format.multipliers_required(dsp_width_bits)

    def describe(self) -> str:
        """e.g. ``"float(e8, m23) 32-bit"``."""
        return f"float(e{self.exponent_bits}, m{self.mantissa_bits}) {self.total_bits}-bit"


def float32() -> FloatFormat:
    """The IEEE-754 single-precision format."""
    return FloatFormat(exponent_bits=8, mantissa_bits=23)


def float64() -> FloatFormat:
    """The IEEE-754 double-precision format."""
    return FloatFormat(exponent_bits=11, mantissa_bits=52)
