"""Numerical precision analysis (paper Section 3.2).

The paper treats precision as a design input: the application designer
chooses a data format (the 1-D PDF case study settled on 18-bit fixed
point, whose maximum error of a few percent was "satisfactory precision"),
and RAT consumes only the consequences — bytes per element for the
communication equations and multiplier demand for the resource test.

This subpackage provides the tooling that choice requires:

* :mod:`formats` — parameterised fixed-point (Qm.n) and custom
  floating-point formats;
* :mod:`quantize` — value/array quantization into a format, with
  round-to-nearest or truncation, and saturation or wrap-around;
* :mod:`error` — error metrics (max absolute/relative error, RMS, SQNR)
  between a reference signal and its quantized counterpart;
* :mod:`search` — minimal-bitwidth search: the smallest format whose
  error on a representative dataset stays within tolerance, mirroring
  the PDF case study's "18-bit was chosen so that only one 18x18 MAC is
  needed per multiplication" trade-off.
"""

from .error import ErrorReport, error_report, max_abs_error, max_rel_error, rms_error, sqnr_db
from .formats import FixedPointFormat, FloatFormat, float32, float64
from .quantize import OverflowMode, RoundingMode, quantize
from .search import PrecisionCandidate, minimal_fixed_point, sweep_fixed_point

__all__ = [
    "ErrorReport",
    "FixedPointFormat",
    "FloatFormat",
    "OverflowMode",
    "PrecisionCandidate",
    "RoundingMode",
    "error_report",
    "float32",
    "float64",
    "max_abs_error",
    "max_rel_error",
    "minimal_fixed_point",
    "quantize",
    "rms_error",
    "sqnr_db",
    "sweep_fixed_point",
]
