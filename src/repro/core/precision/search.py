"""Minimal-bitwidth search over fixed-point formats.

Reproduces the decision process of the paper's 1-D PDF case study: 18-bit
and 32-bit fixed point and 32-bit floating point were evaluated against an
error tolerance; 18-bit fixed point won because it met the tolerance while
"only one Xilinx 18x18 multiply-accumulate (MAC) unit would be needed per
multiplication", and going below 18 bits brought "no performance gains or
appreciable resource savings".

:func:`minimal_fixed_point` automates that: given a representative dataset
transformation (a callable evaluating the algorithm under a quantizing
format) and a tolerance, it finds the narrowest format that stays within
tolerance, and annotates each candidate with its DSP cost so the
cost-cliff at multiples of the device's native multiplier width is
visible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ...errors import PrecisionError
from .error import ErrorReport, error_report
from .formats import FixedPointFormat
from .quantize import OverflowMode, RoundingMode, quantize_array

__all__ = [
    "PrecisionCandidate",
    "sweep_fixed_point",
    "minimal_fixed_point",
    "minimal_float",
]

# A transformation maps (data, format) -> output computed under that
# format.  The default transformation is plain quantization of the data
# itself; case studies supply their kernel (e.g. the PDF estimator
# evaluated with quantized samples).
Transformation = Callable[[np.ndarray, FixedPointFormat], np.ndarray]


def _default_transform(data: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    return quantize_array(data, fmt)


@dataclass(frozen=True)
class PrecisionCandidate:
    """One evaluated format: error metrics plus resource cost."""

    fmt: FixedPointFormat
    report: ErrorReport
    dsp_cost_per_multiply: int
    feasible: bool

    def describe(self) -> str:
        """One-line summary for worksheet output."""
        marker = "PASS" if self.feasible else "FAIL"
        return (
            f"{self.fmt.describe():<28} {marker}  "
            f"{self.report.describe()}  "
            f"DSPs/mult={self.dsp_cost_per_multiply}"
        )


def _auto_frac_bits(data: np.ndarray, total_bits: int, signed: bool) -> int:
    """Choose frac_bits so the data's magnitude range fits.

    Leaves ``ceil(log2(max|x| + 1 LSB))`` integer bits and gives the rest
    to the fraction — the standard range-driven Q-format assignment.
    """
    finite = data[np.isfinite(data)]
    peak = float(np.max(np.abs(finite))) if finite.size else 0.0
    sign_bits = 1 if signed else 0
    if peak <= 0:
        int_bits = 0
    else:
        int_bits = max(0, int(math.floor(math.log2(peak))) + 1)
    frac = total_bits - sign_bits - int_bits
    return max(0, min(frac, total_bits - sign_bits))


def sweep_fixed_point(
    data,
    reference,
    *,
    widths: Iterable[int] = range(8, 33),
    transform: Transformation = _default_transform,
    max_rel: float | None = None,
    max_abs: float | None = None,
    min_sqnr_db: float | None = None,
    signed: bool = True,
    rel_floor: float = 0.0,
    dsp_width_bits: int = 18,
    rounding: RoundingMode = RoundingMode.NEAREST,
    overflow: OverflowMode = OverflowMode.SATURATE,
) -> list[PrecisionCandidate]:
    """Evaluate every candidate width and report feasibility.

    ``reference`` is the full-precision output to compare against —
    usually ``transform(data, <float64>)`` computed by the caller with no
    quantization at all.
    """
    if max_rel is None and max_abs is None and min_sqnr_db is None:
        raise PrecisionError(
            "at least one tolerance (max_rel, max_abs, min_sqnr_db) is required"
        )
    data = np.asarray(data, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    # The Q-format must hold the largest intermediate the datapath sees;
    # the reference output bounds the accumulator magnitude (e.g. the PDF
    # bin totals grow far beyond the +-1 input samples).
    range_probe = np.concatenate([data.ravel(), reference.ravel()])
    candidates: list[PrecisionCandidate] = []
    for width in widths:
        frac = _auto_frac_bits(range_probe, width, signed)
        fmt = FixedPointFormat(total_bits=width, frac_bits=frac, signed=signed)
        produced = transform(data, fmt)
        report = error_report(reference, produced, rel_floor=rel_floor)
        feasible = report.within(
            max_rel=max_rel, max_abs=max_abs, min_sqnr_db=min_sqnr_db
        )
        candidates.append(
            PrecisionCandidate(
                fmt=fmt,
                report=report,
                dsp_cost_per_multiply=fmt.multipliers_required(dsp_width_bits),
                feasible=feasible,
            )
        )
    return candidates


def minimal_fixed_point(
    data,
    reference,
    *,
    widths: Iterable[int] = range(8, 33),
    transform: Transformation = _default_transform,
    max_rel: float | None = None,
    max_abs: float | None = None,
    min_sqnr_db: float | None = None,
    signed: bool = True,
    rel_floor: float = 0.0,
    dsp_width_bits: int = 18,
) -> PrecisionCandidate:
    """The narrowest feasible fixed-point format.

    Raises :class:`~repro.errors.PrecisionError` when no candidate width
    meets the tolerance (the Figure-1 "unrealizable precision requirement"
    verdict).
    """
    candidates = sweep_fixed_point(
        data,
        reference,
        widths=widths,
        transform=transform,
        max_rel=max_rel,
        max_abs=max_abs,
        min_sqnr_db=min_sqnr_db,
        signed=signed,
        rel_floor=rel_floor,
        dsp_width_bits=dsp_width_bits,
    )
    feasible = [c for c in candidates if c.feasible]
    if not feasible:
        raise PrecisionError(
            "no fixed-point width in "
            f"{sorted(c.fmt.total_bits for c in candidates)} meets the tolerance"
        )
    return min(feasible, key=lambda c: c.fmt.total_bits)


def minimal_float(
    data,
    reference,
    *,
    exponent_bits: int = 8,
    mantissa_widths: Iterable[int] = range(4, 53),
    max_rel: float | None = None,
    max_abs: float | None = None,
    min_sqnr_db: float | None = None,
    rel_floor: float = 0.0,
) -> "FloatFormat":
    """The narrowest-mantissa float format meeting the tolerance.

    Complements :func:`minimal_fixed_point` for designs that keep a
    floating representation in hardware (the paper's cited bitwidth
    literature [3], [9] explores exactly this space).  Quantizes the data
    into each candidate ``FloatFormat(exponent_bits, m)`` and returns the
    smallest feasible format; raises
    :class:`~repro.errors.PrecisionError` when none qualifies.
    """
    from .formats import FloatFormat
    from .quantize import quantize_array

    if max_rel is None and max_abs is None and min_sqnr_db is None:
        raise PrecisionError(
            "at least one tolerance (max_rel, max_abs, min_sqnr_db) is required"
        )
    data = np.asarray(data, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    widths = sorted(set(int(m) for m in mantissa_widths))
    if not widths:
        raise PrecisionError("at least one mantissa width is required")
    for mantissa in widths:
        fmt = FloatFormat(exponent_bits=exponent_bits, mantissa_bits=mantissa)
        produced = quantize_array(data, fmt)
        report = error_report(reference, produced, rel_floor=rel_floor)
        if report.within(max_rel=max_rel, max_abs=max_abs,
                         min_sqnr_db=min_sqnr_db):
            return fmt
    raise PrecisionError(
        f"no float mantissa width in {widths} meets the tolerance"
    )
