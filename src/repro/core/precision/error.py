"""Error metrics between a reference signal and its quantized counterpart.

The paper's 1-D PDF study reports "the maximum error percentage was only a
few percent for 18-bit fixed point, which is satisfactory precision for
the application" — i.e. the accept/reject metric is maximum relative error
against the double-precision software output.  This module provides that
metric plus the standard companions (max absolute error, RMS error, SQNR)
so tolerance can be expressed in whichever unit the application demands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import PrecisionError

__all__ = [
    "max_abs_error",
    "max_rel_error",
    "rms_error",
    "sqnr_db",
    "ErrorReport",
    "error_report",
]


def _as_arrays(reference, candidate) -> tuple[np.ndarray, np.ndarray]:
    ref = np.asarray(reference, dtype=np.float64)
    cand = np.asarray(candidate, dtype=np.float64)
    if ref.shape != cand.shape:
        raise PrecisionError(
            f"shape mismatch: reference {ref.shape} vs candidate {cand.shape}"
        )
    if ref.size == 0:
        raise PrecisionError("error metrics require at least one sample")
    return ref, cand


def max_abs_error(reference, candidate) -> float:
    """Largest absolute deviation ``max |ref - cand|``."""
    ref, cand = _as_arrays(reference, candidate)
    return float(np.max(np.abs(ref - cand)))


def max_rel_error(reference, candidate, *, floor: float = 0.0) -> float:
    """Largest relative deviation ``max |ref - cand| / max(|ref|, floor)``.

    ``floor`` guards against division by (near-)zero reference samples:
    deviations at samples with ``|ref| <= floor`` are measured relative to
    ``floor``.  With the default ``floor=0`` a zero reference sample with
    any deviation yields ``inf``, which is the honest answer.
    """
    ref, cand = _as_arrays(reference, candidate)
    denom = np.maximum(np.abs(ref), floor)
    diff = np.abs(ref - cand)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(diff == 0, 0.0, diff / denom)
    return float(np.max(ratios))


def rms_error(reference, candidate) -> float:
    """Root-mean-square deviation."""
    ref, cand = _as_arrays(reference, candidate)
    return float(np.sqrt(np.mean((ref - cand) ** 2)))


def sqnr_db(reference, candidate) -> float:
    """Signal-to-quantization-noise ratio in decibels.

    ``10 log10(sum ref^2 / sum (ref - cand)^2)``; infinite for an exact
    match, raises if the reference signal is identically zero (SQNR is
    undefined).
    """
    ref, cand = _as_arrays(reference, candidate)
    signal = float(np.sum(ref**2))
    if signal == 0:
        raise PrecisionError("SQNR undefined for an identically zero reference")
    noise = float(np.sum((ref - cand) ** 2))
    if noise == 0:
        return float("inf")
    return 10.0 * np.log10(signal / noise)


@dataclass(frozen=True)
class ErrorReport:
    """All four metrics for one reference/candidate pair."""

    max_abs: float
    max_rel: float
    rms: float
    sqnr_db: float
    n_samples: int

    def within(self, *, max_rel: float | None = None, max_abs: float | None = None,
               min_sqnr_db: float | None = None) -> bool:
        """Check the report against any combination of tolerances."""
        if max_rel is not None and self.max_rel > max_rel:
            return False
        if max_abs is not None and self.max_abs > max_abs:
            return False
        if min_sqnr_db is not None and self.sqnr_db < min_sqnr_db:
            return False
        return True

    def describe(self) -> str:
        """One-line summary for worksheet output."""
        return (
            f"max_rel={self.max_rel:.3%} max_abs={self.max_abs:.3e} "
            f"rms={self.rms:.3e} SQNR={self.sqnr_db:.1f} dB "
            f"(n={self.n_samples})"
        )


def error_report(reference, candidate, *, rel_floor: float = 0.0) -> ErrorReport:
    """Compute all metrics at once."""
    ref, cand = _as_arrays(reference, candidate)
    signal = float(np.sum(ref**2))
    if signal == 0:
        sqnr = float("inf") if np.array_equal(ref, cand) else float("-inf")
    else:
        sqnr = sqnr_db(ref, cand)
    return ErrorReport(
        max_abs=max_abs_error(ref, cand),
        max_rel=max_rel_error(ref, cand, floor=rel_floor),
        rms=rms_error(ref, cand),
        sqnr_db=sqnr,
        n_samples=int(ref.size),
    )
