"""The RAT worksheet: parameter sheet plus clock-sweep performance tables.

Section 4 of the paper: "a worksheet can be constructed based upon
Equations (1) through (11).  Users simply provide the input parameters and
the resulting performance values are returned."  Because the achievable
fabric clock is unknowable before place-and-route, the paper evaluates each
case study at a *range* of clocks (75/100/150 MHz); :class:`RATWorksheet`
does the same and renders tables in the exact row layout of Tables 3/6/9:

======================  =========== =========== ===========
f_clk (MHz)             75          100         150
t_comm (sec)            5.56E-6     5.56E-6     5.56E-6
t_comp (sec)            2.62E-4     1.97E-4     1.31E-4
utilcommSB              2%          3%          4%
utilcompSB              98%         97%         96%
t_RC_SB (sec)           1.07E-1     8.09E-2     5.46E-2
speedup                 5.4         7.2         10.6
======================  =========== =========== ===========
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..errors import ParameterError
from ..units import MHZ, format_percent, format_seconds
from .buffering import BufferingMode
from .params import RATInput
from .throughput import ThroughputPrediction, predict

__all__ = ["PerformanceTable", "RATWorksheet"]

# Row order of the paper's performance tables.
_ROW_ORDER: tuple[tuple[str, str], ...] = (
    ("t_comm", "t_comm (sec)"),
    ("t_comp", "t_comp (sec)"),
    ("util_comm", "util_comm"),
    ("util_comp", "util_comp"),
    ("t_rc", "t_RC (sec)"),
    ("speedup", "speedup"),
)


@dataclass(frozen=True)
class PerformanceTable:
    """A rendered set of predictions (plus optional measured column).

    ``columns`` holds one :class:`ThroughputPrediction` per assumed clock;
    ``actual`` optionally holds measured values keyed like
    :meth:`ThroughputPrediction.as_dict` (produced by the hardware
    simulator or typed in from a real run), rendered as a final "Actual"
    column exactly as in the paper.
    """

    title: str
    mode: BufferingMode
    columns: tuple[ThroughputPrediction, ...]
    actual: Mapping[str, float] | None = None
    actual_label: str = "Actual"

    def column_for_clock(self, clock_mhz: float) -> ThroughputPrediction:
        """Return the prediction column closest to a clock in MHz."""
        if not self.columns:
            raise ParameterError("table has no prediction columns")
        return min(
            self.columns, key=lambda c: abs(c.clock_mhz - clock_mhz)
        )

    def best_speedup(self) -> ThroughputPrediction:
        """The prediction column with the highest speedup."""
        if not self.columns:
            raise ParameterError("table has no prediction columns")
        return max(self.columns, key=lambda c: c.speedup)

    def rows(self) -> list[tuple[str, list[str]]]:
        """Render the table body: ``(row_label, [cell, ...])`` pairs."""
        cells: list[tuple[str, list[str]]] = []
        sources: list[Mapping[str, float]] = [c.as_dict() for c in self.columns]
        if self.actual is not None:
            sources.append(self.actual)
        header = [f"Predicted {c.clock_mhz:g}" for c in self.columns]
        if self.actual is not None:
            header.append(self.actual_label)
        cells.append(("f_clk (MHz)", [
            f"{src.get('clock_mhz', float('nan')):g}" for src in sources
        ]))
        for key, label in _ROW_ORDER:
            row: list[str] = []
            for src in sources:
                value = src.get(key)
                if value is None:
                    row.append("-")
                elif key.startswith("util"):
                    row.append(format_percent(value))
                elif key == "speedup":
                    row.append(f"{value:.1f}")
                else:
                    row.append(format_seconds(value))
            cells.append((label, row))
        return cells

    def render(self) -> str:
        """ASCII rendering in the paper's layout."""
        body = self.rows()
        headers = ["" ] + [f"Predicted {c.clock_mhz:g} MHz" for c in self.columns]
        if self.actual is not None:
            headers.append(self.actual_label)
        widths = [max(len(headers[0]), max(len(label) for label, _ in body))]
        n_cols = len(headers) - 1
        for col in range(n_cols):
            widths.append(
                max(len(headers[col + 1]), max(len(row[col]) for _, row in body))
            )
        lines = [self.title] if self.title else []
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
        )
        lines.append("  ".join("-" * w for w in widths))
        for label, row in body:
            lines.append(
                "  ".join(
                    cell.ljust(w)
                    for cell, w in zip([label, *row], widths)
                ).rstrip()
            )
        return "\n".join(lines)

    def as_records(self) -> list[dict[str, float]]:
        """One dict per predicted column (for JSON/benchmark output)."""
        return [c.as_dict() for c in self.columns]

    def as_csv(self) -> str:
        """Comma-separated rendering (numeric, full precision).

        One row per quantity, one column per prediction (plus the actual
        column when present) — the same layout as :meth:`render` but
        machine-readable for spreadsheets, which is where most real RAT
        worksheets live.
        """
        sources: list[Mapping[str, float]] = [c.as_dict() for c in self.columns]
        headers = ["quantity"] + [
            f"predicted_{c.clock_mhz:g}MHz" for c in self.columns
        ]
        if self.actual is not None:
            sources.append(self.actual)
            headers.append("actual")
        lines = [",".join(headers)]
        keys = ["clock_mhz", "t_comm", "t_comp", "util_comm", "util_comp",
                "t_rc", "speedup"]
        for key in keys:
            cells = [key]
            for src in sources:
                value = src.get(key)
                cells.append("" if value is None else repr(float(value)))
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class RATWorksheet:
    """User-facing worksheet: one design's inputs, many assumed clocks.

    Parameters
    ----------
    rat:
        Complete worksheet input.  Its embedded clock is used when
        ``clocks_mhz`` is empty.
    clocks_mhz:
        Candidate fabric clocks to sweep (the paper uses 75/100/150 MHz
        because pre-P&R clock estimates are unreliable).
    """

    rat: RATInput
    clocks_mhz: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        for clock in self.clocks_mhz:
            if clock <= 0:
                raise ParameterError(f"clock must be positive, got {clock} MHz")

    @property
    def effective_clocks_mhz(self) -> tuple[float, ...]:
        """The sweep clocks, defaulting to the input's embedded clock."""
        if self.clocks_mhz:
            return self.clocks_mhz
        return (self.rat.computation.clock_mhz,)

    def predictions(
        self, mode: BufferingMode = BufferingMode.SINGLE
    ) -> list[ThroughputPrediction]:
        """One throughput prediction per sweep clock."""
        return [
            predict(self.rat.with_clock_hz(clock * MHZ), mode)
            for clock in self.effective_clocks_mhz
        ]

    def performance_table(
        self,
        mode: BufferingMode = BufferingMode.SINGLE,
        actual: Mapping[str, float] | None = None,
        title: str | None = None,
    ) -> PerformanceTable:
        """Build the paper-style performance table, optionally vs. actual."""
        name = title if title is not None else (
            f"Performance parameters of {self.rat.name}" if self.rat.name else ""
        )
        return PerformanceTable(
            title=name,
            mode=mode,
            columns=tuple(self.predictions(mode)),
            actual=actual,
        )

    def input_table(self) -> str:
        """Render the Table-2 style input parameter sheet."""
        d = self.rat.to_dict()
        clocks = "/".join(f"{c:g}" for c in self.effective_clocks_mhz)
        rows = [
            ("Dataset Parameters", ""),
            ("  N_elements, input (elements)", f"{d['elements_in']}"),
            ("  N_elements, output (elements)", f"{d['elements_out']}"),
            ("  N_bytes/element (bytes/element)", f"{d['bytes_per_element']:g}"),
            ("Communication Parameters", ""),
            ("  throughput_ideal (MB/s)", f"{d['throughput_ideal_mbps']:g}"),
            ("  alpha_write (0 < a <= 1)", f"{d['alpha_write']:g}"),
            ("  alpha_read (0 < a <= 1)", f"{d['alpha_read']:g}"),
            ("Computation Parameters", ""),
            ("  N_ops/element (ops/element)", f"{d['ops_per_element']:g}"),
            ("  throughput_proc (ops/cycle)", f"{d['throughput_proc']:g}"),
            ("  f_clock (MHz)", clocks),
            ("Software Parameters", ""),
            ("  t_soft (sec)", f"{d['t_soft']:g}"),
            ("  N_iter (iterations)", f"{d['n_iterations']}"),
        ]
        width = max(len(label) for label, _ in rows)
        title = f"Input parameters of {self.rat.name}" if self.rat.name else (
            "Input parameters"
        )
        lines = [title, "-" * width]
        for label, value in rows:
            lines.append(f"{label.ljust(width)}  {value}".rstrip())
        return "\n".join(lines)
