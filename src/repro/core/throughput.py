"""RAT throughput analysis: Equations (1)-(11) of the paper.

Naming
------
The paper names transfers from the *host's* perspective: the host **writes**
input data to the FPGA (Equation 2's ``alpha_write`` applies to the input
stream) and **reads** results back (Equation 3's ``alpha_read`` applies to
the output stream).  Figure 2's timeline instead labels lanes from the
FPGA's perspective (``R`` = data arriving).  This module uses unambiguous
names — ``t_input`` and ``t_output`` — and exposes the paper's ``t_comm``,
``t_comp``, ``t_RC``, speedup and utilization terms on the prediction
result.

Verified anchors (paper Tables 3, 6, 9):

>>> from repro.apps import pdf1d  # doctest: +SKIP
>>> predict(pdf1d.rat_input(clock_mhz=150)).t_rc  # doctest: +SKIP
0.0546...
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from ..obs import get_metrics, get_tracer
from .buffering import BufferingMode
from .params import RATInput

__all__ = [
    "ThroughputPrediction",
    "input_transfer_time",
    "output_transfer_time",
    "communication_time",
    "computation_time",
    "rc_execution_time",
    "speedup",
    "utilization_comp",
    "utilization_comm",
    "predict",
]


def input_transfer_time(rat: RATInput) -> float:
    """Equation (2): host→FPGA transfer time for one iteration's block.

    ``t_input = N_elements,in * N_bytes/element / (alpha_write * throughput_ideal)``
    """
    return rat.dataset.bytes_in / rat.communication.write_bandwidth


def output_transfer_time(rat: RATInput) -> float:
    """Equation (3): FPGA→host transfer time for one iteration's results.

    ``t_output = N_elements,out * N_bytes/element / (alpha_read * throughput_ideal)``

    Zero output elements yield zero time (e.g. the 1-D PDF returns its 256
    accumulated bins once at the end; per-iteration output is negligible
    and the paper models it as a single element).
    """
    if rat.dataset.elements_out == 0:
        return 0.0
    return rat.dataset.bytes_out / rat.communication.read_bandwidth


def communication_time(rat: RATInput) -> float:
    """Equation (1): ``t_comm = t_input + t_output`` for one iteration."""
    return input_transfer_time(rat) + output_transfer_time(rat)


def computation_time(rat: RATInput) -> float:
    """Equation (4): FPGA compute time for one iteration's block.

    ``t_comp = N_elements * ops/element / (f_clock * throughput_proc)``

    The numerator and ``throughput_proc`` must count "operations" at the
    same granularity; the equation is invariant to that choice as long as
    both sides agree (see the paper's Booth-multiplier example, pinned by
    ``tests/core/test_throughput.py``).
    """
    total_ops = rat.dataset.elements_in * rat.computation.ops_per_element
    return total_ops / rat.computation.ops_per_second


def rc_execution_time(
    rat: RATInput, mode: BufferingMode = BufferingMode.SINGLE
) -> float:
    """Equations (5)-(6): total FPGA execution time over all iterations.

    Single buffered: ``t_RC = N_iter * (t_comm + t_comp)``.
    Double buffered: ``t_RC = N_iter * max(t_comm, t_comp)`` — the smaller
    term hides entirely in steady state; the startup transient is ignored,
    as the paper assumes for sufficiently many iterations.
    """
    t_comm = communication_time(rat)
    t_comp = computation_time(rat)
    n = rat.software.n_iterations
    if mode is BufferingMode.SINGLE:
        return n * (t_comm + t_comp)
    if mode is BufferingMode.DOUBLE:
        return n * max(t_comm, t_comp)
    raise ParameterError(f"unknown buffering mode {mode!r}")


def speedup(rat: RATInput, mode: BufferingMode = BufferingMode.SINGLE) -> float:
    """Equation (7): ``speedup = t_soft / t_RC`` over the whole application."""
    return rat.software.t_soft / rc_execution_time(rat, mode)


def utilization_comp(
    t_comm: float, t_comp: float, mode: BufferingMode = BufferingMode.SINGLE
) -> float:
    """Equations (8)/(10): fraction of execution spent computing.

    High values mean the FPGA is rarely idle (speedup is maximised); low
    values flag reformulation potential — less, or better overlapped,
    communication.
    """
    _validate_util_inputs(t_comm, t_comp)
    if mode is BufferingMode.SINGLE:
        return t_comp / (t_comm + t_comp)
    if mode is BufferingMode.DOUBLE:
        return t_comp / max(t_comm, t_comp)
    raise ParameterError(f"unknown buffering mode {mode!r}")


def utilization_comm(
    t_comm: float, t_comp: float, mode: BufferingMode = BufferingMode.SINGLE
) -> float:
    """Equations (9)/(11): fraction of execution spent communicating.

    Unlike compute (which can be widened with more parallel logic), the
    channel is a single serial resource, so this utilization directly
    bounds how much extra transfer traffic the design could absorb.
    """
    _validate_util_inputs(t_comm, t_comp)
    if mode is BufferingMode.SINGLE:
        return t_comm / (t_comm + t_comp)
    if mode is BufferingMode.DOUBLE:
        return t_comm / max(t_comm, t_comp)
    raise ParameterError(f"unknown buffering mode {mode!r}")


def _validate_util_inputs(t_comm: float, t_comp: float) -> None:
    if t_comm < 0 or t_comp < 0:
        raise ParameterError(
            f"times must be >= 0, got t_comm={t_comm}, t_comp={t_comp}"
        )
    if t_comm + t_comp == 0:
        raise ParameterError("t_comm and t_comp cannot both be zero")


@dataclass(frozen=True)
class ThroughputPrediction:
    """Complete output of one RAT throughput analysis.

    All times are in seconds.  ``t_input`` / ``t_output`` are per
    iteration; ``t_rc`` covers all ``n_iterations``.  The per-mode
    utilizations follow Equations (8)-(11).
    """

    rat: RATInput
    mode: BufferingMode
    t_input: float
    t_output: float
    t_comm: float
    t_comp: float
    t_rc: float
    speedup: float
    util_comp: float
    util_comm: float

    @property
    def clock_mhz(self) -> float:
        """Assumed fabric clock in MHz (column header of Tables 3/6/9)."""
        return self.rat.computation.clock_mhz

    @property
    def bound(self) -> str:
        """Which term dominates: ``"communication"`` or ``"computation"``."""
        return "communication" if self.t_comm > self.t_comp else "computation"

    @property
    def t_iteration(self) -> float:
        """Modelled duration of one steady-state iteration."""
        if self.mode is BufferingMode.SINGLE:
            return self.t_comm + self.t_comp
        return max(self.t_comm, self.t_comp)

    def as_dict(self) -> dict[str, float]:
        """Flat numeric dict (used by table rendering and JSON output)."""
        return {
            "clock_mhz": self.clock_mhz,
            "t_input": self.t_input,
            "t_output": self.t_output,
            "t_comm": self.t_comm,
            "t_comp": self.t_comp,
            "t_rc": self.t_rc,
            "speedup": self.speedup,
            "util_comp": self.util_comp,
            "util_comm": self.util_comm,
        }


def predict(
    rat: RATInput, mode: BufferingMode = BufferingMode.SINGLE
) -> ThroughputPrediction:
    """Run the full throughput analysis for one worksheet input.

    This is the library's central entry point: everything in the paper's
    Tables 3, 6 and 9 "Predicted" columns derives from this call.

    Every call increments the ``throughput.predictions`` counter and
    feeds the ``throughput.speedup`` histogram, so a sweep/goal-seek
    session's coverage of the design space is visible in the metrics
    summary; with tracing enabled each call is also a ``rat.predict``
    span.
    """
    with get_tracer().span(
        "rat.predict", {"name": rat.name, "mode": mode.value}, "throughput"
    ):
        prediction = _predict(rat, mode)
    metrics = get_metrics()
    metrics.counter("throughput.predictions").inc()
    metrics.histogram("throughput.speedup").observe(prediction.speedup)
    return prediction


def _predict(rat: RATInput, mode: BufferingMode) -> ThroughputPrediction:
    t_input = input_transfer_time(rat)
    t_output = output_transfer_time(rat)
    t_comm = t_input + t_output
    t_comp = computation_time(rat)
    t_rc = rc_execution_time(rat, mode)
    return ThroughputPrediction(
        rat=rat,
        mode=mode,
        t_input=t_input,
        t_output=t_output,
        t_comm=t_comm,
        t_comp=t_comp,
        t_rc=t_rc,
        speedup=rat.software.t_soft / t_rc,
        util_comp=utilization_comp(t_comm, t_comp, mode),
        util_comm=utilization_comm(t_comm, t_comp, mode),
    )
