"""Design spaces: named parameter axes over a base worksheet.

A :class:`DesignSpace` is a base :class:`~repro.core.params.RATInput`
plus an ``(n, k)`` matrix of axis values — one column per named axis, one
row per candidate design.  Three constructors cover the common sampling
plans: :meth:`DesignSpace.grid` (full cross product),
:meth:`DesignSpace.random` (independent uniform draws), and
:meth:`DesignSpace.explicit` (a hand-picked point list).

Every axis is defined twice, consistently:

* a **scalar edit** reusing the worksheet's ``with_*`` methods, so
  :meth:`DesignSpace.design` yields exactly the ``RATInput`` a hand
  written what-if loop would construct (this is also what the LRU
  prediction cache keys on); and
* a **column expansion** mapping the axis values to SI-unit
  :class:`~repro.core.batch.BatchInput` columns, so
  :meth:`DesignSpace.to_batch` can feed the vectorized engine without
  materialising per-row dataclasses.

The two definitions apply the same unit conversions in the same order,
keeping the scalar and batch paths numerically identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from ..core.batch import BatchInput
from ..core.params import RATInput
from ..errors import ParameterError
from ..units import MHZ

__all__ = ["AxisSpec", "DesignSpace", "axis_names"]

#: Scalar what-if edit: (base worksheet, axis value) -> edited worksheet.
Edit = Callable[[RATInput, float], RATInput]

#: Column expansion: axis value column -> BatchInput column overrides (SI).
ColumnFn = Callable[[np.ndarray], dict[str, np.ndarray]]


@dataclass(frozen=True)
class AxisSpec:
    """One sweepable worksheet parameter.

    ``edit`` is the scalar path (reuses ``RATInput.with_*``); ``columns``
    is the vectorized path; ``targets`` names the BatchInput columns the
    axis writes, used to reject overlapping axes at space construction.
    """

    name: str
    edit: Edit
    columns: ColumnFn
    targets: tuple[str, ...]


_AXES: dict[str, AxisSpec] = {
    "clock_hz": AxisSpec(
        "clock_hz",
        lambda r, v: r.with_clock_hz(v),
        lambda v: {"clock_hz": v},
        ("clock_hz",),
    ),
    "clock_mhz": AxisSpec(
        "clock_mhz",
        lambda r, v: r.with_clock_hz(v * MHZ),
        lambda v: {"clock_hz": v * MHZ},
        ("clock_hz",),
    ),
    "throughput_proc": AxisSpec(
        "throughput_proc",
        lambda r, v: r.with_throughput_proc(v),
        lambda v: {"throughput_proc": v},
        ("throughput_proc",),
    ),
    "alpha": AxisSpec(
        "alpha",
        lambda r, v: r.with_alphas(v, v),
        lambda v: {"alpha_write": v, "alpha_read": v},
        ("alpha_write", "alpha_read"),
    ),
    "alpha_write": AxisSpec(
        "alpha_write",
        lambda r, v: r.with_alphas(v, r.communication.alpha_read),
        lambda v: {"alpha_write": v},
        ("alpha_write",),
    ),
    "alpha_read": AxisSpec(
        "alpha_read",
        lambda r, v: r.with_alphas(r.communication.alpha_write, v),
        lambda v: {"alpha_read": v},
        ("alpha_read",),
    ),
    "elements_in": AxisSpec(
        "elements_in",
        lambda r, v: r.with_block_size(int(v), r.software.n_iterations),
        lambda v: {"elements_in": np.trunc(v)},
        ("elements_in",),
    ),
}


def axis_names() -> list[str]:
    """The supported axis names, sorted (CLI help and error messages)."""
    return sorted(_AXES)


def _axis(name: str) -> AxisSpec:
    spec = _AXES.get(name)
    if spec is None:
        raise ParameterError(
            f"unknown design axis {name!r}; supported: {axis_names()}"
        )
    return spec


@dataclass(frozen=True, eq=False)
class DesignSpace:
    """``n`` candidate designs spanned by named parameter axes.

    ``values`` is an ``(n, k)`` float matrix; column ``j`` holds the
    value of axis ``axes[j]`` for each design point.  Construct through
    :meth:`grid`, :meth:`random`, or :meth:`explicit`.
    """

    base: RATInput
    axes: tuple[str, ...]
    values: np.ndarray

    def __post_init__(self) -> None:
        for name in self.axes:
            _axis(name)  # raises on unknown axes
        if len(set(self.axes)) != len(self.axes):
            raise ParameterError(f"duplicate axes in {self.axes}")
        targets = [t for name in self.axes for t in _axis(name).targets]
        if len(set(targets)) != len(targets):
            raise ParameterError(
                f"axes {self.axes} write overlapping worksheet fields"
            )
        matrix = np.asarray(self.values, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.axes):
            raise ParameterError(
                f"values must be (n, {len(self.axes)}), got {matrix.shape}"
            )
        if matrix.shape[0] < 1:
            raise ParameterError("a design space needs at least one point")
        object.__setattr__(self, "values", matrix)

    # ---- constructors ------------------------------------------------------

    @classmethod
    def grid(cls, base: RATInput, **axes: Sequence[float]) -> "DesignSpace":
        """Full cross product of the given per-axis value lists.

        ``DesignSpace.grid(rat, clock_mhz=[75, 100, 150], alpha=[.2, .4])``
        yields 6 points.  Axis order follows keyword order; the last axis
        varies fastest.
        """
        if not axes:
            raise ParameterError("grid requires at least one axis")
        names = tuple(axes)
        columns = [
            np.asarray(list(values), dtype=np.float64)
            for values in axes.values()
        ]
        for name, column in zip(names, columns):
            if column.ndim != 1 or column.shape[0] < 1:
                raise ParameterError(f"axis {name!r} needs a 1-D value list")
        mesh = np.meshgrid(*columns, indexing="ij")
        matrix = np.stack([m.ravel() for m in mesh], axis=1)
        return cls(base=base, axes=names, values=matrix)

    @classmethod
    def random(
        cls,
        base: RATInput,
        n: int,
        *,
        seed: int = 2007,
        **ranges: tuple[float, float],
    ) -> "DesignSpace":
        """``n`` independent uniform draws from per-axis (low, high) ranges."""
        if n < 1:
            raise ParameterError(f"n must be >= 1, got {n}")
        if not ranges:
            raise ParameterError("random requires at least one axis range")
        names = tuple(ranges)
        lows = np.array([r[0] for r in ranges.values()], dtype=np.float64)
        highs = np.array([r[1] for r in ranges.values()], dtype=np.float64)
        if (highs < lows).any():
            raise ParameterError("axis ranges must satisfy low <= high")
        rng = np.random.default_rng(seed)
        matrix = lows + (highs - lows) * rng.random((n, len(names)))
        return cls(base=base, axes=names, values=matrix)

    @classmethod
    def explicit(
        cls, base: RATInput, points: Sequence[Mapping[str, float]]
    ) -> "DesignSpace":
        """A hand-picked list of ``{axis: value}`` design points.

        Every point must name the same axes (a ragged list would make
        the value matrix — and the comparison — meaningless).
        """
        if not points:
            raise ParameterError("explicit requires at least one point")
        names = tuple(points[0])
        for i, point in enumerate(points):
            if tuple(point) != names:
                raise ParameterError(
                    f"point {i} axes {tuple(point)} differ from {names}"
                )
        matrix = np.array(
            [[float(point[name]) for name in names] for point in points],
            dtype=np.float64,
        )
        return cls(base=base, axes=names, values=matrix)

    # ---- accessors ---------------------------------------------------------

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def point(self, i: int) -> dict[str, float]:
        """Axis values of design ``i`` as ``{axis: value}``."""
        return {
            name: float(self.values[i, j]) for j, name in enumerate(self.axes)
        }

    def design(self, i: int) -> RATInput:
        """Scalar worksheet for design ``i`` via the ``with_*`` edits."""
        rat = self.base
        for j, name in enumerate(self.axes):
            rat = _axis(name).edit(rat, float(self.values[i, j]))
        return rat

    def designs(self) -> Iterator[RATInput]:
        """Iterate every design as a scalar worksheet (slow path)."""
        return (self.design(i) for i in range(len(self)))

    def to_batch(self, *, check: bool = True) -> BatchInput:
        """The whole space as one :class:`BatchInput` (fast path).

        Applies each axis's column expansion to the base worksheet; no
        per-row ``RATInput`` objects are created.  ``check=False``
        defers row validation so the fault-tolerant executor can
        quarantine invalid design points instead of losing the space to
        its first bad row.
        """
        overrides: dict[str, np.ndarray] = {}
        for j, name in enumerate(self.axes):
            overrides.update(_axis(name).columns(self.values[:, j]))
        return BatchInput.from_base(self.base, len(self), overrides, check=check)

    def describe(self) -> str:
        """e.g. ``"3 axes x 1000 points over clock_mhz, alpha, ..."``."""
        return (
            f"{len(self.axes)} axis(es) x {len(self)} point(s) over "
            + ", ".join(self.axes)
        )

