"""Chunked, fault-tolerant execution of design-space explorations.

:func:`explore` is the throughput-prediction fast path: it converts a
:class:`~repro.explore.space.DesignSpace` to one struct-of-arrays batch,
splits it into fixed-size chunks, and runs each chunk through
:func:`~repro.core.batch.batch_predict` — serially by default, or across
a ``ProcessPoolExecutor`` when ``workers > 1`` (``workers=0`` means "one
per CPU core").  Passing a
:class:`~repro.explore.cache.PredictionCache` switches to a memoized
path that only batch-evaluates cache misses.

:func:`map_designs` is the escape hatch for evaluators the batch engine
cannot vectorize — event-driven hardware simulation, goal-seek solvers,
resource estimation — fanning an arbitrary picklable callable over every
design through the same resilient chunk engine.

Fault tolerance (see :mod:`repro.explore.runtime` for the machinery):

* ``on_error="fail"`` (default) preserves the historical behaviour — the
  first invalid design or exhausted chunk raises.  ``"quarantine"``
  validates every row up front, evaluates the valid ones, NaN-fills the
  rest, and reports structured :class:`PointFailure` /
  :class:`ChunkFailure` diagnostics on the result.  ``"skip"`` drops the
  failed rows instead, with ``ExplorationResult.indices`` mapping
  surviving rows back to their design-space indices.
* ``retry`` (a :class:`RetryPolicy`) adds per-chunk retries with
  exponential backoff, per-chunk timeouts on the pool path, and
  ``BrokenProcessPool`` recovery with graceful degradation to serial.
* ``checkpoint=PATH`` journals each completed chunk to a JSONL file;
  ``resume=True`` replays completed chunks from a previous interrupted
  run (bitwise-identical results — see
  :mod:`repro.explore.checkpoint`).

Observability: the whole call runs under an ``explore.run`` span; every
chunk records an ``explore.chunk`` span in the *parent* process —
worker-evaluated chunks return their elapsed time and the parent
re-emits a synthetic span carrying it (``synthetic: True``), so pool
runs are no longer blind.  ``explore.points`` counts evaluated designs,
``explore.chunk_seconds`` aggregates per-chunk latency,
``explore.retries`` / ``explore.failed_points`` / ``explore.failed_chunks``
/ ``explore.resumed_chunks`` track fault handling, and the
``explore.predictions_per_sec`` gauge tracks realised throughput.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from functools import partial
from typing import Any, Callable, Sequence

import numpy as np

from ..core.batch import (
    BatchInput,
    BatchPrediction,
    batch_predict,
    mark_rows_valid,
)
from ..core.buffering import BufferingMode
from ..core.params import RATInput
from ..core.plan import shared_plan
from ..core.throughput import ThroughputPrediction
from ..errors import ExplorationError, ParameterError
from ..obs import get_metrics, get_tracer
from ..obs.propagation import TraceContext, activate, current_context, deactivate
from .cache import PredictionCache
from .checkpoint import ChunkJournal, run_key
from .runtime import (
    ChunkFailure,
    PointFailure,
    RetryPolicy,
    check_on_error,
    quarantine_rows,
    run_chunks,
)
from .space import DesignSpace

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ExplorationResult",
    "MapResult",
    "explore",
    "map_designs",
]

#: Default points per chunk: large enough to amortise numpy dispatch,
#: small enough to keep per-chunk spans meaningful and pool tasks even.
DEFAULT_CHUNK_SIZE = 65536

#: Floor applied to measured wall-clock before computing throughput:
#: sub-resolution runs (a tiny space on a fast machine) clamp to the
#: timer's resolution instead of dropping the sample entirely.
_MIN_ELAPSED_S = time.get_clock_info("perf_counter").resolution or 1e-9

#: Scalar result attributes copied between row and column layouts.
_RESULT_FIELDS = (
    "t_input",
    "t_output",
    "t_comm",
    "t_comp",
    "t_rc",
    "speedup",
    "util_comp",
    "util_comm",
)


@dataclass(frozen=True, eq=False)
class ExplorationResult:
    """Predictions for every point of one explored design space.

    With ``on_error="quarantine"`` the prediction keeps one row per
    design point, NaN-filled where the point failed; with ``"skip"``
    failed rows are dropped and ``indices`` maps prediction row ``i``
    back to design ``indices[i]`` of ``space``.  ``failures`` holds
    row-level validation diagnoses, ``chunk_failures`` crash/timeout
    diagnoses for whole chunks.
    """

    space: DesignSpace
    mode: BufferingMode
    prediction: BatchPrediction
    elapsed_s: float
    cache_hits: int = 0
    cache_misses: int = 0
    failures: tuple[PointFailure, ...] = ()
    chunk_failures: tuple[ChunkFailure, ...] = ()
    indices: np.ndarray | None = None
    resumed_chunks: int = 0
    retries: int = 0
    degraded: bool = False

    def __len__(self) -> int:
        return len(self.prediction)

    @property
    def points_per_sec(self) -> float:
        """Realised evaluation throughput of this run.

        Clamped to the wall-clock timer's resolution, so a run faster
        than one timer tick reports a (conservative) finite rate rather
        than zero.
        """
        return len(self) / max(self.elapsed_s, _MIN_ELAPSED_S)

    @property
    def n_failed(self) -> int:
        """Design points that produced no prediction."""
        chunk_rows = sum(
            failure.hi - failure.lo
            for failure in self.chunk_failures
            if failure.lo >= 0
        )
        return len(self.failures) + chunk_rows

    def design_index(self, i: int) -> int:
        """Design-space index of prediction row ``i``."""
        return int(self.indices[i]) if self.indices is not None else i

    def best(self) -> tuple[dict[str, float], ThroughputPrediction]:
        """The axis values and prediction with the highest speedup."""
        i = self.prediction.argbest()
        return self.space.point(self.design_index(i)), self.prediction.row(i)

    def as_records(self) -> list[dict[str, float]]:
        """One flat dict per prediction row: axis values + fields."""
        records = self.prediction.as_records()
        for i, record in enumerate(records):
            record.update(self.space.point(self.design_index(i)))
        return records


@dataclass(frozen=True, eq=False)
class MapResult:
    """Detailed outcome of one :func:`map_designs` run.

    ``results[i]`` is the evaluator's value for design ``indices[i]``;
    with ``on_error="quarantine"`` failed designs are present as
    ``None``, with ``"skip"`` they are dropped.
    """

    results: list[Any]
    indices: np.ndarray
    elapsed_s: float
    chunk_failures: tuple[ChunkFailure, ...] = ()
    resumed_chunks: int = 0
    retries: int = 0
    degraded: bool = False


def _chunk_bounds(n: int, chunk_size: int) -> list[tuple[int, int]]:
    return [(lo, min(lo + chunk_size, n)) for lo in range(0, n, chunk_size)]


def _effective_workers(workers: int) -> int:
    """Resolve the ``workers`` knob: 0 means one worker per CPU core."""
    if workers < 0:
        raise ParameterError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def _predict_chunk(
    chunk: BatchInput,
    mode: BufferingMode,
    trace: dict | None = None,
    plan_key: RATInput | None = None,
) -> tuple[float, tuple[np.ndarray, ...]]:
    """Worker-side chunk evaluation (top level so it pickles).

    Returns ``(elapsed_seconds, result_columns)`` so the parent can
    re-emit per-chunk observability for pool-evaluated chunks.

    ``trace`` is the parent's serialized
    :class:`~repro.obs.propagation.TraceContext` (contextvars do not
    cross the ``ProcessPoolExecutor`` boundary); activating it in the
    worker correlates any worker-side structured logs with the
    originating request's trace.

    ``plan_key`` is the design space's base worksheet, shipped through
    the chunk envelope the same way: it keys the worker-process-wide
    :func:`~repro.core.plan.shared_plan` cache so every chunk of the
    same exploration reuses one compiled plan per process.  Results are
    copied out of the plan's buffers (``copy=True``) because the parent
    retains chunk columns across the run.  ``plan_key=None`` falls back
    to the uncompiled :func:`~repro.core.batch.batch_predict`.
    """
    token = (
        activate(TraceContext.from_dict(trace)) if trace is not None else None
    )
    try:
        started = time.perf_counter()
        if plan_key is not None:
            prediction = shared_plan(plan_key).evaluate(
                chunk, mode, copy=True
            )
        else:
            prediction = batch_predict(chunk, mode)
        elapsed = time.perf_counter() - started
        return elapsed, tuple(
            getattr(prediction, name) for name in _RESULT_FIELDS
        )
    finally:
        if token is not None:
            deactivate(token)


#: Per-process map_designs state, seeded by :func:`_map_worker_init` so
#: the (potentially large) design space and evaluator pickle into each
#: worker once at pool start instead of once per chunk task.
_MAP_STATE: tuple[DesignSpace, Callable] | None = None


def _map_worker_init(space: DesignSpace, evaluator: Callable) -> None:
    global _MAP_STATE
    _MAP_STATE = (space, evaluator)


def _map_chunk(bounds: tuple[int, int]) -> tuple[float, list[Any]]:
    """Worker-side map_designs chunk: evaluate designs ``lo..hi``."""
    assert _MAP_STATE is not None, "worker initializer did not run"
    space, evaluator = _MAP_STATE
    lo, hi = bounds
    started = time.perf_counter()
    results = [evaluator(space.design(i)) for i in range(lo, hi)]
    return time.perf_counter() - started, results


def _emit_chunk_observability(
    index: int, size: int, elapsed: float, *, synthetic: bool
) -> None:
    """Parent-side chunk span + latency metric (real or re-emitted).

    Chunks evaluated in worker processes cannot record spans in the
    parent's tracer, so the worker returns its elapsed time and the
    parent emits a *synthetic* ``explore.chunk`` span carrying it — the
    span's own duration is ~0; read ``elapsed_s`` for the real timing.
    """
    attributes = {"chunk": index, "size": size, "elapsed_s": elapsed}
    if synthetic:
        attributes["synthetic"] = True
    with get_tracer().span("explore.chunk", attributes, "explore"):
        pass
    get_metrics().histogram("explore.chunk_seconds").observe(elapsed)


def _emit_chunk_failure_span(failure: ChunkFailure) -> None:
    """Failure-annotated span for a chunk that exhausted its retries."""
    with get_tracer().span(
        "explore.chunk",
        {
            "chunk": failure.index,
            "size": max(failure.hi - failure.lo, 0),
            "error": failure.reason,
            "error_type": failure.error_type,
            "attempts": failure.attempts,
        },
        "explore",
    ):
        pass


class _ChunkedRun:
    """Shared chunk bookkeeping: checkpoint replay, dispatch, remap.

    Drives :func:`run_chunks` over the chunks a previous checkpointed
    run has not already completed, journals fresh completions, emits
    parent-side chunk observability, and translates engine failure
    records (indexed by *task position*) back to chunk indices/bounds.
    """

    def __init__(
        self,
        bounds: list[tuple[int, int]],
        journal: ChunkJournal | None,
        decode: Callable[[Any], Any],
        encode: Callable[[Any], Any],
    ) -> None:
        self.bounds = bounds
        self.journal = journal
        self.decode = decode
        self.encode = encode
        self.slots: list[Any] = [None] * len(bounds)
        self.todo: list[int] = list(range(len(bounds)))
        self.resumed = 0

    def replay(self, completed: dict[int, Any]) -> None:
        """Fill slots from a resumed journal's completed payloads."""
        for index, payload in completed.items():
            if 0 <= index < len(self.bounds):
                self.slots[index] = self.decode(payload)
                self.resumed += 1
        self.todo = [i for i in range(len(self.bounds)) if self.slots[i] is None]
        if self.resumed:
            get_metrics().counter("explore.resumed_chunks").inc(self.resumed)

    def _on_result(self, position: int, result: tuple[float, Any]) -> None:
        index = self.todo[position]
        elapsed, value = result
        self.slots[index] = value
        lo, hi = self.bounds[index]
        _emit_chunk_observability(index, hi - lo, elapsed, synthetic=True)
        if self.journal is not None:
            self.journal.append(
                index, {"elapsed": elapsed, "payload": self.encode(value)}
            )

    def _remap(self, failures: Sequence[ChunkFailure]) -> tuple[ChunkFailure, ...]:
        """Engine failures (task positions) -> chunk indices + bounds."""
        remapped = []
        for failure in failures:
            index = self.todo[failure.index]
            lo, hi = self.bounds[index]
            remapped.append(replace(failure, index=index, lo=lo, hi=hi))
        return tuple(remapped)

    def run(
        self,
        tasks: Sequence[Any],
        fn: Callable[[Any], Any],
        *,
        workers: int,
        policy: RetryPolicy,
        on_error: str,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> tuple[tuple[ChunkFailure, ...], int, bool]:
        """Execute outstanding chunks; returns (failures, retries, degraded)."""
        try:
            report = run_chunks(
                tasks,
                fn,
                workers=workers,
                policy=policy,
                on_error=on_error,
                on_result=self._on_result,
                initializer=initializer,
                initargs=initargs,
            )
        except ExplorationError as exc:
            chunk_failures = self._remap(exc.chunk_failures)
            for failure in chunk_failures:
                _emit_chunk_failure_span(failure)
            raise ExplorationError(
                str(exc), chunk_failures=chunk_failures, partial=exc.partial
            ) from exc
        chunk_failures = self._remap(report.failures)
        for failure in chunk_failures:
            _emit_chunk_failure_span(failure)
        return chunk_failures, report.retries, report.degraded


def _open_journal(
    checkpoint: str | os.PathLike | None,
    resume: bool,
    key_fn: Callable[[], str],
) -> tuple[ChunkJournal | None, dict[int, Any]]:
    """Set up the chunk journal (if requested) and load resumable work."""
    if not checkpoint:
        if resume:
            raise ParameterError("resume=True requires a checkpoint path")
        return None, {}
    journal = ChunkJournal(checkpoint, key_fn())
    completed: dict[int, Any] = {}
    if resume:
        completed = journal.load()
        journal.open(fresh=not completed)
    else:
        journal.open(fresh=True)
    return journal, completed


def _encode_columns(columns: tuple[np.ndarray, ...]) -> list[list[float]]:
    return [column.tolist() for column in columns]


def _decode_columns(payload: dict) -> tuple[np.ndarray, ...]:
    return tuple(
        np.asarray(column, dtype=np.float64)
        for column in payload["payload"]
    )


def _explore_cached(
    space: DesignSpace, mode: BufferingMode, cache: PredictionCache
) -> tuple[BatchPrediction, int, int]:
    """Memoized path: batch-evaluate only the cache misses."""
    hits_before, misses_before = cache.hits, cache.misses
    designs = [space.design(i) for i in range(len(space))]
    found: list[ThroughputPrediction | None] = [
        cache.get(rat, mode) for rat in designs
    ]
    missing = [i for i, p in enumerate(found) if p is None]
    if missing:
        sub = BatchInput.from_inputs([designs[i] for i in missing])
        sub_prediction = batch_predict(sub, mode)
        for k, i in enumerate(missing):
            row = sub_prediction.row(k, designs[i])
            cache.put(designs[i], mode, row)
            found[i] = row
    columns = {
        name: np.array([getattr(p, name) for p in found], dtype=np.float64)
        for name in _RESULT_FIELDS
    }
    prediction = BatchPrediction(batch=space.to_batch(), mode=mode, **columns)
    return (
        prediction,
        cache.hits - hits_before,
        cache.misses - misses_before,
    )


def _scatter(
    n: int,
    valid_indices: np.ndarray,
    columns: dict[str, np.ndarray],
) -> dict[str, np.ndarray]:
    """Spread evaluated-row columns into NaN-initialised full columns."""
    full = {}
    for name, column in columns.items():
        out = np.full(n, np.nan)
        out[valid_indices] = column
        full[name] = out
    return full


def explore(
    space: DesignSpace,
    mode: BufferingMode = BufferingMode.SINGLE,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: int = 1,
    cache: PredictionCache | None = None,
    on_error: str = "fail",
    retry: RetryPolicy | None = None,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = False,
    chunk_fn: Callable | None = None,
) -> ExplorationResult:
    """Predict throughput for every point of ``space`` on the batch engine.

    ``chunk_size`` bounds the rows evaluated per batch call (and the
    granularity of pool tasks, checkpoint records, and ``explore.chunk``
    spans); ``workers`` selects serial (``1``), process-pool (``> 1``),
    or one-per-CPU-core (``0``) execution.  ``cache`` switches to the
    memoized scalar-keyed path — designs already cached are not
    re-evaluated, at the cost of materialising per-row worksheets, so
    reserve it for spaces that are revisited.

    Fault tolerance: ``on_error`` picks the failure policy
    (``"fail"``/``"skip"``/``"quarantine"``, see the module docstring),
    ``retry`` the per-chunk :class:`RetryPolicy`, and
    ``checkpoint``/``resume`` the crash-recovery journal.  ``chunk_fn``
    replaces the chunk evaluator (signature
    ``(chunk: BatchInput, mode) -> (elapsed_s, columns)``) and exists
    for fault-injection tests; it must be picklable for pool runs.
    """
    if chunk_size < 1:
        raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    check_on_error(on_error)
    policy = retry or RetryPolicy()
    pool_workers = _effective_workers(workers)
    if cache is not None and (
        on_error != "fail" or checkpoint or resume or chunk_fn
    ):
        raise ParameterError(
            "the cached explore path supports neither on_error policies, "
            "checkpointing, nor chunk_fn injection; drop cache= or the "
            "fault-tolerance options"
        )
    n = len(space)
    tracer = get_tracer()
    metrics = get_metrics()
    started = time.perf_counter()
    journal: ChunkJournal | None = None
    try:
        with tracer.span(
            "explore.run",
            {"points": n, "workers": pool_workers, "chunk_size": chunk_size,
             "mode": mode.value, "on_error": on_error},
            "explore",
        ):
            cache_hits = cache_misses = 0
            point_failures: tuple[PointFailure, ...] = ()
            chunk_failures: tuple[ChunkFailure, ...] = ()
            indices: np.ndarray | None = None
            resumed = retries = 0
            degraded = False
            if cache is not None:
                prediction, cache_hits, cache_misses = _explore_cached(
                    space, mode, cache
                )
            else:
                batch = space.to_batch(check=(on_error == "fail"))
                valid_indices = np.arange(n)
                eval_batch = batch
                if on_error != "fail":
                    valid_indices, point_failures = quarantine_rows(
                        batch, space.point
                    )
                    if point_failures:
                        # quarantine_rows just vetted every kept row;
                        # mark them valid rather than re-running the
                        # rules a second time inside take().
                        eval_batch = mark_rows_valid(
                            batch.take(valid_indices, check=False)
                        )
                    else:
                        eval_batch = mark_rows_valid(batch)
                m = len(eval_batch)
                bounds = _chunk_bounds(m, chunk_size)
                journal, completed = _open_journal(
                    checkpoint, resume,
                    lambda: run_key(space, mode, chunk_size, on_error),
                )
                runner = _ChunkedRun(
                    bounds, journal, _decode_columns, _encode_columns
                )
                runner.replay(completed)
                fn = partial(chunk_fn or _predict_chunk, mode=mode)
                ctx = current_context()
                if chunk_fn is None:
                    # Ship the base worksheet through the chunk envelope
                    # so each worker process compiles one plan for this
                    # space and reuses it across its chunks; the trace
                    # context rides along the same way (read inside the
                    # explore.run span, so the shipped context is
                    # narrowed to that span's identity and worker-side
                    # chunks parent under it).
                    envelope: dict[str, object] = {"plan_key": space.base}
                    if ctx is not None:
                        envelope["trace"] = ctx.to_dict()
                    fn = partial(_predict_chunk, mode=mode, **envelope)
                tasks = [eval_batch[lo:hi] for lo, hi in
                         (bounds[i] for i in runner.todo)]
                try:
                    chunk_failures, retries, degraded = runner.run(
                        tasks, fn,
                        workers=pool_workers, policy=policy, on_error=on_error,
                    )
                except ExplorationError as exc:
                    exc.failures = point_failures
                    raise
                resumed = runner.resumed
                prediction, indices = _assemble_exploration(
                    batch, mode, n, valid_indices, runner.slots,
                    bounds, chunk_failures, on_error,
                )
                failed_rows = len(point_failures) + sum(
                    failure.hi - failure.lo for failure in chunk_failures
                )
                if failed_rows:
                    metrics.counter("explore.failed_points").inc(failed_rows)
    finally:
        if journal is not None:
            journal.close()
    elapsed = time.perf_counter() - started
    metrics.counter("explore.points").inc(n)
    metrics.gauge("explore.predictions_per_sec").set(
        n / max(elapsed, _MIN_ELAPSED_S)
    )
    return ExplorationResult(
        space=space,
        mode=mode,
        prediction=prediction,
        elapsed_s=elapsed,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        failures=point_failures,
        chunk_failures=chunk_failures,
        indices=indices,
        resumed_chunks=resumed,
        retries=retries,
        degraded=degraded,
    )


def _assemble_exploration(
    batch: BatchInput,
    mode: BufferingMode,
    n: int,
    valid_indices: np.ndarray,
    slots: Sequence[tuple[np.ndarray, ...] | None],
    bounds: Sequence[tuple[int, int]],
    chunk_failures: Sequence[ChunkFailure],
    on_error: str,
) -> tuple[BatchPrediction, np.ndarray | None]:
    """Stitch chunk columns (+ failures) into the final prediction."""
    m = bounds[-1][1] if bounds else 0
    failed = {failure.index for failure in chunk_failures}
    parts = []
    for i, part in enumerate(slots):
        if part is None:
            lo, hi = bounds[i]
            part = tuple(
                np.full(hi - lo, np.nan) for _ in _RESULT_FIELDS
            )
            assert i in failed or on_error != "fail"
        parts.append(part)
    columns = {
        name: (
            np.concatenate([part[j] for part in parts])
            if parts
            else np.empty(0)
        )
        for j, name in enumerate(_RESULT_FIELDS)
    }
    quarantined_points = len(valid_indices) != n
    if on_error == "skip":
        # Drop rows of failed chunks entirely; surviving row i maps to
        # design indices[i] of the space.
        keep = np.ones(m, dtype=bool)
        for failure in chunk_failures:
            keep[failure.lo:failure.hi] = False
        indices = valid_indices[keep]
        columns = {name: column[keep] for name, column in columns.items()}
        result_batch = batch.take(indices, check=True)
        return BatchPrediction(batch=result_batch, mode=mode, **columns), indices
    if quarantined_points or (failed and on_error == "quarantine"):
        columns = _scatter(n, valid_indices, columns)
    return BatchPrediction(batch=batch, mode=mode, **columns), None


def map_designs(
    space: DesignSpace,
    evaluator: Callable[[RATInput], Any],
    *,
    workers: int = 1,
    chunk_size: int = 16,
    on_error: str = "fail",
    retry: RetryPolicy | None = None,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = False,
    detail: bool = False,
) -> list[Any] | MapResult:
    """Fan a non-vectorizable evaluator over every design in ``space``.

    For work the batch engine cannot express — event-driven hardware
    simulation, goal-seek, resource estimation — ``evaluator`` receives
    each scalar :class:`RATInput` and its results are returned in design
    order.  With ``workers > 1`` (or ``workers=0`` for one per CPU core)
    the evaluator must be picklable (a module-level function), as must
    its results; ``chunk_size`` is the pool's task granularity.

    Fault tolerance mirrors :func:`explore`: ``on_error``, ``retry``,
    and ``checkpoint``/``resume`` (checkpoint payloads must be
    JSON-serializable).  Failures are chunk-granular here — with
    ``"quarantine"`` the failed designs' entries are ``None``, with
    ``"skip"`` they are dropped.  ``detail=True`` returns a
    :class:`MapResult` carrying the failure records and the surviving
    design indices instead of the bare list.
    """
    check_on_error(on_error)
    policy = retry or RetryPolicy()
    pool_workers = _effective_workers(workers)
    if chunk_size < 1:
        raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    n = len(space)
    tracer = get_tracer()
    metrics = get_metrics()
    started = time.perf_counter()
    journal: ChunkJournal | None = None
    try:
        with tracer.span(
            "explore.map_designs",
            {"points": n, "workers": pool_workers, "on_error": on_error},
            "explore",
        ):
            bounds = _chunk_bounds(n, chunk_size)
            evaluator_id = getattr(evaluator, "__qualname__", repr(evaluator))
            journal, completed = _open_journal(
                checkpoint, resume,
                lambda: run_key(
                    space, BufferingMode.SINGLE, chunk_size, on_error,
                    evaluator=evaluator_id,
                ),
            )
            runner = _ChunkedRun(
                bounds, journal,
                decode=lambda payload: payload["payload"],
                encode=lambda value: value,
            )
            runner.replay(completed)
            # Seed the parent too: the serial path and pool degradation
            # both run _map_chunk in-process.
            _map_worker_init(space, evaluator)
            tasks = [bounds[i] for i in runner.todo]
            chunk_failures, retries, degraded = runner.run(
                tasks, _map_chunk,
                workers=pool_workers, policy=policy, on_error=on_error,
                initializer=_map_worker_init, initargs=(space, evaluator),
            )
            failed = {failure.index for failure in chunk_failures}
            results: list[Any] = []
            indices: list[int] = []
            for i, (lo, hi) in enumerate(bounds):
                if runner.slots[i] is not None:
                    results.extend(runner.slots[i])
                    indices.extend(range(lo, hi))
                elif on_error == "quarantine":
                    results.extend([None] * (hi - lo))
                    indices.extend(range(lo, hi))
                else:
                    assert i in failed
            if chunk_failures:
                metrics.counter("explore.failed_points").inc(
                    sum(f.hi - f.lo for f in chunk_failures)
                )
    finally:
        if journal is not None:
            journal.close()
    elapsed = time.perf_counter() - started
    metrics.counter("explore.points").inc(n)
    metrics.gauge("explore.predictions_per_sec").set(
        n / max(elapsed, _MIN_ELAPSED_S)
    )
    if detail:
        return MapResult(
            results=results,
            indices=np.asarray(indices, dtype=np.intp),
            elapsed_s=elapsed,
            chunk_failures=chunk_failures,
            resumed_chunks=runner.resumed,
            retries=retries,
            degraded=degraded,
        )
    return results
