"""Chunked execution of design-space explorations.

:func:`explore` is the throughput-prediction fast path: it converts a
:class:`~repro.explore.space.DesignSpace` to one struct-of-arrays batch,
splits it into fixed-size chunks, and runs each chunk through
:func:`~repro.core.batch.batch_predict` — serially by default, or across
a ``ProcessPoolExecutor`` when ``workers > 1`` (worth it only for spaces
large enough to amortise array pickling).  Passing a
:class:`~repro.explore.cache.PredictionCache` switches to a memoized
path that only batch-evaluates cache misses.

:func:`map_designs` is the escape hatch for evaluators the batch engine
cannot vectorize — event-driven hardware simulation, goal-seek solvers,
resource estimation — fanning an arbitrary picklable callable over every
design through the same process pool.

Observability: every chunk runs under an ``explore.chunk`` span, the
whole call under ``explore.run``; ``explore.points`` counts evaluated
designs and the ``explore.predictions_per_sec`` gauge tracks realised
throughput.  (Chunks evaluated in worker processes record their spans
and counters in the *worker's* registry; the parent still records the
run-level span and throughput.)
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Sequence

import numpy as np

from ..core.batch import BatchInput, BatchPrediction, batch_predict
from ..core.buffering import BufferingMode
from ..core.params import RATInput
from ..core.throughput import ThroughputPrediction
from ..errors import ParameterError
from ..obs import get_metrics, get_tracer
from .cache import PredictionCache
from .space import DesignSpace

__all__ = ["DEFAULT_CHUNK_SIZE", "ExplorationResult", "explore", "map_designs"]

#: Default points per chunk: large enough to amortise numpy dispatch,
#: small enough to keep per-chunk spans meaningful and pool tasks even.
DEFAULT_CHUNK_SIZE = 65536

#: Scalar result attributes copied between row and column layouts.
_RESULT_FIELDS = (
    "t_input",
    "t_output",
    "t_comm",
    "t_comp",
    "t_rc",
    "speedup",
    "util_comp",
    "util_comm",
)


@dataclass(frozen=True, eq=False)
class ExplorationResult:
    """Predictions for every point of one explored design space."""

    space: DesignSpace
    mode: BufferingMode
    prediction: BatchPrediction
    elapsed_s: float
    cache_hits: int = 0
    cache_misses: int = 0

    def __len__(self) -> int:
        return len(self.prediction)

    @property
    def points_per_sec(self) -> float:
        """Realised evaluation throughput of this run."""
        return len(self) / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def best(self) -> tuple[dict[str, float], ThroughputPrediction]:
        """The axis values and prediction with the highest speedup."""
        i = self.prediction.argbest()
        return self.space.point(i), self.prediction.row(i)

    def as_records(self) -> list[dict[str, float]]:
        """One flat dict per point: axis values + prediction fields."""
        records = self.prediction.as_records()
        for i, record in enumerate(records):
            record.update(self.space.point(i))
        return records


def _chunk_bounds(n: int, chunk_size: int) -> list[tuple[int, int]]:
    return [(lo, min(lo + chunk_size, n)) for lo in range(0, n, chunk_size)]


def _predict_chunk(
    chunk: BatchInput, mode: BufferingMode
) -> tuple[np.ndarray, ...]:
    """Worker-side chunk evaluation (top level so it pickles)."""
    prediction = batch_predict(chunk, mode)
    return tuple(getattr(prediction, name) for name in _RESULT_FIELDS)


def _assemble(
    batch: BatchInput,
    mode: BufferingMode,
    parts: Sequence[tuple[np.ndarray, ...]],
) -> BatchPrediction:
    """Concatenate per-chunk result columns into one prediction."""
    columns = {
        name: np.concatenate([part[j] for part in parts])
        for j, name in enumerate(_RESULT_FIELDS)
    }
    return BatchPrediction(batch=batch, mode=mode, **columns)


def _explore_cached(
    space: DesignSpace, mode: BufferingMode, cache: PredictionCache
) -> tuple[BatchPrediction, int, int]:
    """Memoized path: batch-evaluate only the cache misses."""
    hits_before, misses_before = cache.hits, cache.misses
    designs = [space.design(i) for i in range(len(space))]
    found: list[ThroughputPrediction | None] = [
        cache.get(rat, mode) for rat in designs
    ]
    missing = [i for i, p in enumerate(found) if p is None]
    if missing:
        sub = BatchInput.from_inputs([designs[i] for i in missing])
        sub_prediction = batch_predict(sub, mode)
        for k, i in enumerate(missing):
            row = sub_prediction.row(k, designs[i])
            cache.put(designs[i], mode, row)
            found[i] = row
    columns = {
        name: np.array([getattr(p, name) for p in found], dtype=np.float64)
        for name in _RESULT_FIELDS
    }
    prediction = BatchPrediction(batch=space.to_batch(), mode=mode, **columns)
    return (
        prediction,
        cache.hits - hits_before,
        cache.misses - misses_before,
    )


def explore(
    space: DesignSpace,
    mode: BufferingMode = BufferingMode.SINGLE,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: int = 1,
    cache: PredictionCache | None = None,
) -> ExplorationResult:
    """Predict throughput for every point of ``space`` on the batch engine.

    ``chunk_size`` bounds the rows evaluated per batch call (and the
    granularity of pool tasks and ``explore.chunk`` spans); ``workers``
    selects serial (``<= 1``) or process-pool execution.  ``cache``
    switches to the memoized scalar-keyed path — designs already cached
    are not re-evaluated, at the cost of materialising per-row
    worksheets, so reserve it for spaces that are revisited.
    """
    if chunk_size < 1:
        raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    if workers < 0:
        raise ParameterError(f"workers must be >= 0, got {workers}")
    n = len(space)
    tracer = get_tracer()
    started = time.perf_counter()
    with tracer.span(
        "explore.run",
        {"points": n, "workers": workers, "chunk_size": chunk_size,
         "mode": mode.value},
        "explore",
    ):
        cache_hits = cache_misses = 0
        if cache is not None:
            prediction, cache_hits, cache_misses = _explore_cached(
                space, mode, cache
            )
        else:
            batch = space.to_batch()
            bounds = _chunk_bounds(n, chunk_size)
            chunks = [batch[lo:hi] for lo, hi in bounds]
            if workers > 1 and len(chunks) > 1:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    parts = list(
                        pool.map(partial(_predict_chunk, mode=mode), chunks)
                    )
            else:
                parts = []
                for index, chunk in enumerate(chunks):
                    with tracer.span(
                        "explore.chunk",
                        {"chunk": index, "size": len(chunk)},
                        "explore",
                    ):
                        parts.append(_predict_chunk(chunk, mode))
            prediction = _assemble(batch, mode, parts)
    elapsed = time.perf_counter() - started
    metrics = get_metrics()
    metrics.counter("explore.points").inc(n)
    if elapsed > 0:
        metrics.gauge("explore.predictions_per_sec").set(n / elapsed)
    return ExplorationResult(
        space=space,
        mode=mode,
        prediction=prediction,
        elapsed_s=elapsed,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )


def map_designs(
    space: DesignSpace,
    evaluator: Callable[[RATInput], Any],
    *,
    workers: int = 1,
    chunk_size: int = 16,
) -> list[Any]:
    """Fan a non-vectorizable evaluator over every design in ``space``.

    For work the batch engine cannot express — event-driven hardware
    simulation, goal-seek, resource estimation — ``evaluator`` receives
    each scalar :class:`RATInput` and its results are returned in design
    order.  With ``workers > 1`` the evaluator must be picklable (a
    module-level function), as must its results; ``chunk_size`` is the
    pool's task granularity.
    """
    if workers < 0:
        raise ParameterError(f"workers must be >= 0, got {workers}")
    if chunk_size < 1:
        raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    n = len(space)
    tracer = get_tracer()
    started = time.perf_counter()
    with tracer.span(
        "explore.map_designs", {"points": n, "workers": workers}, "explore"
    ):
        if workers > 1:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                results = list(
                    pool.map(evaluator, space.designs(), chunksize=chunk_size)
                )
        else:
            results = []
            for index, (lo, hi) in enumerate(_chunk_bounds(n, chunk_size)):
                with tracer.span(
                    "explore.chunk",
                    {"chunk": index, "size": hi - lo},
                    "explore",
                ):
                    results.extend(
                        evaluator(space.design(i)) for i in range(lo, hi)
                    )
    elapsed = time.perf_counter() - started
    metrics = get_metrics()
    metrics.counter("explore.points").inc(n)
    if elapsed > 0:
        metrics.gauge("explore.predictions_per_sec").set(n / elapsed)
    return results
