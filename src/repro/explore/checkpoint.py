"""Checkpoint/resume journal for long exploration runs.

A checkpointed :func:`~repro.explore.executor.explore` (or
``map_designs``) run appends one JSONL record per *completed chunk* to a
journal file.  If the process is killed — Ctrl-C, OOM, a crashed worker
taking the parent down — re-running with ``resume=True`` replays the
completed chunks from the journal and only evaluates the rest.  Because
Python's ``repr``-based JSON float serialization round-trips IEEE-754
doubles exactly, a killed-then-resumed run produces *bitwise-identical*
predictions to an uninterrupted one (pinned by
``tests/explore/test_checkpoint.py``).

File format (one JSON object per line)::

    {"kind": "header", "version": 1, "key": "<sha256>", "chunks": 16}
    {"kind": "chunk", "index": 3, "payload": {...}}
    ...

The ``key`` is a content hash of everything that determines the chunk
layout and the numbers: the base worksheet, the axis names and values,
the buffering mode, the chunk size, and the failure policy.  Resuming
against a journal whose key differs (the space changed, the chunk size
changed) raises :class:`~repro.errors.ExplorationError` rather than
silently mixing incompatible partial results.  A torn final line — the
classic crash-mid-write artifact — is ignored on load.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from typing import Any, Iterator

from ..core.buffering import BufferingMode
from ..errors import ExplorationError, ParameterError
from .space import DesignSpace

__all__ = ["ChunkJournal", "JOURNAL_VERSION", "run_key"]

JOURNAL_VERSION = 1


def run_key(
    space: DesignSpace,
    mode: BufferingMode,
    chunk_size: int,
    on_error: str,
    *,
    evaluator: str = "",
) -> str:
    """Content hash identifying one resumable run's chunk layout.

    Two calls agree iff they would evaluate the same numbers into the
    same chunks: same base worksheet, axes, axis values (hashed from the
    raw float64 bytes, so bit-level changes count), buffering mode,
    chunk size, and on_error policy.  ``evaluator`` distinguishes
    ``map_designs`` journals (it carries the evaluator's qualified name)
    from batch-predict journals.
    """
    values = space.values.astype(dtype="<f8", copy=False)
    payload = json.dumps(
        {
            "version": JOURNAL_VERSION,
            "base": space.base.to_dict(),
            "axes": list(space.axes),
            "values_sha": hashlib.sha256(
                values.tobytes(order="C")
            ).hexdigest(),
            "mode": mode.value,
            "chunk_size": int(chunk_size),
            "on_error": on_error,
            "evaluator": evaluator,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ChunkJournal:
    """Append-only JSONL record of completed chunks for one run key.

    Lifecycle: construct with the journal path and the run's
    :func:`run_key`; call :meth:`load` to recover completed chunks (and
    validate the key) when resuming, then :meth:`open` to start
    appending; call :meth:`append` from the executor's completion
    callback; :meth:`close` when the run finishes.  Safe to use as a
    context manager.
    """

    def __init__(self, path: str | os.PathLike, key: str) -> None:
        if not str(path):
            raise ParameterError("checkpoint path must be non-empty")
        self.path = os.fspath(path)
        self.key = key
        self._handle: io.TextIOWrapper | None = None

    # ---- reading -----------------------------------------------------------

    def _records(self) -> Iterator[dict]:
        """Parse existing journal lines, tolerating a torn final line."""
        with open(self.path, encoding="utf-8") as handle:
            previous = None
            for line in handle:
                try:
                    record = json.loads(line)
                except ValueError:
                    # A malformed line is only acceptable as the torn
                    # tail of a crash-interrupted write; remember it and
                    # complain if anything follows.
                    previous = line
                    continue
                if previous is not None:
                    raise ExplorationError(
                        f"checkpoint {self.path!r} is corrupt: malformed "
                        "line in the middle of the journal"
                    )
                yield record

    def load(self) -> dict[int, Any]:
        """Completed ``{chunk_index: payload}`` records, or ``{}``.

        A missing file is an empty (fresh) journal.  A journal written
        for a different run key raises ``ExplorationError`` — resuming
        it would splice numbers from a different space/mode/chunking
        into this run.
        """
        if not os.path.exists(self.path):
            return {}
        completed: dict[int, Any] = {}
        saw_header = False
        for record in self._records():
            kind = record.get("kind")
            if kind == "header":
                if record.get("key") != self.key:
                    raise ExplorationError(
                        f"checkpoint {self.path!r} was written for a "
                        "different run (space, mode, chunking, or policy "
                        "changed); delete it or point --checkpoint at a "
                        "fresh path"
                    )
                if record.get("version") != JOURNAL_VERSION:
                    raise ExplorationError(
                        f"checkpoint {self.path!r} has journal version "
                        f"{record.get('version')!r}; this build reads "
                        f"version {JOURNAL_VERSION}"
                    )
                saw_header = True
            elif kind == "chunk":
                if not saw_header:
                    raise ExplorationError(
                        f"checkpoint {self.path!r} is corrupt: chunk "
                        "record before header"
                    )
                completed[int(record["index"])] = record["payload"]
        if completed and not saw_header:  # pragma: no cover - defensive
            raise ExplorationError(
                f"checkpoint {self.path!r} is corrupt: no header record"
            )
        return completed

    # ---- writing -----------------------------------------------------------

    def open(self, *, fresh: bool) -> "ChunkJournal":
        """Start journaling: truncate + write header, or append.

        ``fresh=True`` starts a new journal (overwriting any existing
        file); ``fresh=False`` appends to a journal :meth:`load` already
        validated, writing the header only if the file does not exist
        yet.
        """
        exists = os.path.exists(self.path)
        mode = "w" if fresh or not exists else "a"
        self._handle = open(self.path, mode, encoding="utf-8")
        if mode == "w":
            self._write(
                {
                    "kind": "header",
                    "version": JOURNAL_VERSION,
                    "key": self.key,
                }
            )
        return self

    def append(self, index: int, payload: Any) -> None:
        """Record one completed chunk (flushed immediately)."""
        if self._handle is None:
            raise ExplorationError("journal is not open for writing")
        try:
            self._write({"kind": "chunk", "index": index, "payload": payload})
        except TypeError as exc:
            raise ParameterError(
                "checkpoint payloads must be JSON-serializable; "
                f"chunk {index} is not: {exc}"
            ) from exc

    def _write(self, record: dict) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the append handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ChunkJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
