"""Design-space exploration on the vectorized batch engine.

RAT's value to a designer is what-if exploration — sweeps, crossover
bisection, Monte Carlo uncertainty bands, goal-seeking — and all of them
reduce to evaluating the worksheet equations over many candidate
designs.  This subsystem makes that evaluation fast, structured, and
fault-tolerant:

``space``
    :class:`DesignSpace`: named parameter axes over a base worksheet
    with grid / random / explicit-list sampling plans, convertible to
    scalar ``RATInput`` rows or one struct-of-arrays batch.
``executor``
    :func:`explore`: chunked evaluation through
    :func:`repro.core.batch.batch_predict`, serial or process-parallel;
    :func:`map_designs` for non-vectorizable evaluators (hardware
    simulation, goal-seek).
``runtime``
    The fault-tolerance layer: :class:`RetryPolicy` retry/backoff/
    timeout knobs, row-level quarantine with :class:`PointFailure`
    diagnostics, chunk-level crash/hang recovery with
    :class:`ChunkFailure` records, and pool respawn / serial
    degradation.
``checkpoint``
    :class:`ChunkJournal`: JSONL chunk journal keyed by a content hash
    of the run, so an interrupted exploration resumes from completed
    chunks with bitwise-identical results.
``cache``
    :class:`PredictionCache`: LRU memoization of scalar predictions
    keyed on the frozen worksheet.

The ``rat explore`` CLI subcommand is a thin wrapper over
:meth:`DesignSpace.grid` + :func:`explore`.
"""

from .cache import PredictionCache
from .checkpoint import ChunkJournal, run_key
from .executor import (
    DEFAULT_CHUNK_SIZE,
    ExplorationResult,
    MapResult,
    explore,
    map_designs,
)
from .runtime import (
    ChunkFailure,
    ChunkRunReport,
    ON_ERROR_POLICIES,
    PointFailure,
    RetryPolicy,
    quarantine_rows,
    run_chunks,
)
from .space import AxisSpec, DesignSpace, axis_names

__all__ = [
    "AxisSpec",
    "ChunkFailure",
    "ChunkJournal",
    "ChunkRunReport",
    "DEFAULT_CHUNK_SIZE",
    "DesignSpace",
    "ExplorationResult",
    "MapResult",
    "ON_ERROR_POLICIES",
    "PointFailure",
    "PredictionCache",
    "RetryPolicy",
    "axis_names",
    "explore",
    "map_designs",
    "quarantine_rows",
    "run_chunks",
    "run_key",
]
