"""Design-space exploration on the vectorized batch engine.

RAT's value to a designer is what-if exploration — sweeps, crossover
bisection, Monte Carlo uncertainty bands, goal-seeking — and all of them
reduce to evaluating the worksheet equations over many candidate
designs.  This subsystem makes that evaluation fast and structured:

``space``
    :class:`DesignSpace`: named parameter axes over a base worksheet
    with grid / random / explicit-list sampling plans, convertible to
    scalar ``RATInput`` rows or one struct-of-arrays batch.
``executor``
    :func:`explore`: chunked evaluation through
    :func:`repro.core.batch.batch_predict`, serial or process-parallel;
    :func:`map_designs` for non-vectorizable evaluators (hardware
    simulation, goal-seek).
``cache``
    :class:`PredictionCache`: LRU memoization of scalar predictions
    keyed on the frozen worksheet.

The ``rat explore`` CLI subcommand is a thin wrapper over
:meth:`DesignSpace.grid` + :func:`explore`.
"""

from .cache import PredictionCache
from .executor import (
    DEFAULT_CHUNK_SIZE,
    ExplorationResult,
    explore,
    map_designs,
)
from .space import AxisSpec, DesignSpace, axis_names

__all__ = [
    "AxisSpec",
    "DEFAULT_CHUNK_SIZE",
    "DesignSpace",
    "ExplorationResult",
    "PredictionCache",
    "axis_names",
    "explore",
    "map_designs",
]
