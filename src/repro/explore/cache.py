"""LRU cache of scalar throughput predictions.

Exploration sessions revisit design points constantly — a bisection
probes the same lattice nodes, interactive what-if loops re-evaluate the
nominal design after each edit, goal-seek solvers re-enter the same
brackets.  :class:`PredictionCache` memoizes
:func:`repro.core.throughput.predict` keyed on the worksheet itself:
:class:`~repro.core.params.RATInput` is a frozen (hence hashable)
dataclass, so two structurally identical worksheets share one cache slot
regardless of how they were constructed.

Every lookup maintains the ``explore.cache_hits`` /
``explore.cache_misses`` counters and the ``explore.cache_hit_rate``
gauge in the process-global metrics registry, so a long-running service
can watch its cache effectiveness without extra plumbing.
"""

from __future__ import annotations

from collections import OrderedDict

from ..core.buffering import BufferingMode
from ..core.params import RATInput
from ..core.throughput import ThroughputPrediction, predict
from ..errors import ParameterError
from ..obs import get_metrics

__all__ = ["PredictionCache"]

#: Cache key: the frozen worksheet plus the buffering mode.
_Key = tuple[RATInput, BufferingMode]


class PredictionCache:
    """Bounded least-recently-used memoization of ``predict``.

    ``maxsize`` bounds the number of retained predictions; the least
    recently *used* (looked up or inserted) entry is evicted first.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ParameterError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[_Key, ThroughputPrediction] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _record(self, hit: bool) -> None:
        metrics = get_metrics()
        if hit:
            self.hits += 1
            metrics.counter("explore.cache_hits").inc()
        else:
            self.misses += 1
            metrics.counter("explore.cache_misses").inc()
        metrics.gauge("explore.cache_hit_rate").set(self.hit_rate)

    def get(
        self, rat: RATInput, mode: BufferingMode = BufferingMode.SINGLE
    ) -> ThroughputPrediction | None:
        """The cached prediction, or None; counts as a hit/miss."""
        entry = self._entries.get((rat, mode))
        self._record(hit=entry is not None)
        if entry is not None:
            self._entries.move_to_end((rat, mode))
        return entry

    def put(
        self,
        rat: RATInput,
        mode: BufferingMode,
        prediction: ThroughputPrediction,
    ) -> None:
        """Insert (or refresh) one prediction, evicting the LRU entry."""
        key = (rat, mode)
        self._entries[key] = prediction
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def predict(
        self, rat: RATInput, mode: BufferingMode = BufferingMode.SINGLE
    ) -> ThroughputPrediction:
        """Memoized drop-in for :func:`repro.core.throughput.predict`."""
        cached = self.get(rat, mode)
        if cached is not None:
            return cached
        prediction = predict(rat, mode)
        self.put(rat, mode, prediction)
        return prediction

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss tallies."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
