"""Fault-tolerant chunk execution for design-space exploration.

PR 2 scaled the Figure-1 loop to million-point sweeps; this module makes
those sweeps survive partial failure.  Three layers, each independently
usable:

``RetryPolicy``
    Declarative retry/backoff/timeout knobs shared by every executor
    entry point.
``quarantine_rows``
    Row-level triage: given a deferred-validation
    :class:`~repro.core.batch.BatchInput`, split the rows scalar
    validation would reject into structured :class:`PointFailure`
    diagnostics (same message text as the scalar ``ParameterError``)
    and return the surviving row indices.
``run_chunks``
    The resilient dispatch engine: runs one picklable function over a
    task list, serially or on a ``ProcessPoolExecutor``, with per-chunk
    retry + exponential backoff, per-chunk timeouts (pool path),
    ``BrokenProcessPool`` recovery by pool respawn with one-at-a-time
    *suspect probing* so a crashing chunk is blamed precisely instead of
    burning innocent chunks' retry budgets, and graceful degradation to
    serial execution when the pool infrastructure itself keeps failing.

Failure semantics are controlled by ``on_error``:

``"fail"``
    The first chunk that exhausts its retries raises
    :class:`~repro.errors.ExplorationError` carrying the structured
    failures and whatever results completed.
``"skip"`` / ``"quarantine"``
    Execution continues; failed chunks are reported in the returned
    :class:`ChunkRunReport` and the caller decides whether to drop the
    rows (skip) or NaN-fill them (quarantine).

Observability: every retry increments ``explore.retries``, every
exhausted chunk increments ``explore.failed_chunks``, and pool
degradation sets the ``explore.degraded_to_serial`` gauge.  Each of
these also emits a structured log event (``explore.retry`` /
``explore.chunk_failed`` / ``explore.degraded``) through
:mod:`repro.obs.log`, trace-correlated when a request context is active.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor
from concurrent.futures import wait as _futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..core.batch import BatchInput, row_violations, valid_row_mask
from ..errors import ExplorationError, ParameterError
from ..obs import get_metrics
from ..obs.log import event, get_logger
from ..obs.metrics import MetricsRegistry

_log = get_logger("explore")

__all__ = [
    "ChunkFailure",
    "ChunkRunReport",
    "ON_ERROR_POLICIES",
    "PointFailure",
    "RetryPolicy",
    "check_on_error",
    "quarantine_rows",
    "run_chunks",
    "with_bounds",
]

#: Accepted ``on_error`` policy names.
ON_ERROR_POLICIES = ("fail", "skip", "quarantine")

#: Pool deaths in a row (with no successful chunk in between) after which
#: the engine stops respawning and degrades to serial execution.
_MAX_CONSECUTIVE_POOL_BREAKS = 4


def check_on_error(on_error: str) -> str:
    """Validate an ``on_error`` policy name (shared by all entry points)."""
    if on_error not in ON_ERROR_POLICIES:
        raise ParameterError(
            f"on_error must be one of {ON_ERROR_POLICIES}, got {on_error!r}"
        )
    return on_error


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/timeout configuration for chunk execution.

    ``max_retries`` bounds *re*-executions per chunk (0 means one attempt
    only).  The delay before retry ``k`` (0-based) is
    ``backoff_s * backoff_factor**k``.  ``timeout_s`` bounds one
    attempt's wall-clock time on the pool path; a chunk still running at
    its deadline is treated as hung, the pool is torn down (running
    tasks cannot be cancelled) and the chunk is charged one attempt.
    Timeouts are not enforceable serially — there is no portable way to
    interrupt a hung in-process call — so the serial path ignores
    ``timeout_s``.
    """

    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ParameterError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_s < 0:
            raise ParameterError(
                f"backoff_s must be >= 0, got {self.backoff_s}"
            )
        if self.backoff_factor < 1:
            raise ParameterError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.timeout_s is not None and not self.timeout_s > 0:
            raise ParameterError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before re-running a chunk after ``attempt`` failures."""
        return self.backoff_s * self.backoff_factor ** max(attempt - 1, 0)


@dataclass(frozen=True)
class PointFailure:
    """One quarantined design point: the row, the axis values, and why.

    ``parameter`` names the offending worksheet column and ``reason`` is
    byte-identical to the ``ParameterError`` message the scalar
    ``predict()`` path raises for the same value.  ``point`` carries the
    design's axis values when the caller knows them (the exploration
    executor fills it from :meth:`DesignSpace.point`).
    """

    index: int
    parameter: str
    value: float
    reason: str
    point: Mapping[str, float] | None = None

    def describe(self) -> str:
        """One-line human-readable diagnosis."""
        where = f"point {self.index}"
        if self.point:
            axes = ", ".join(f"{k}={v:g}" for k, v in self.point.items())
            where = f"{where} ({axes})"
        return f"{where}: {self.reason}"


@dataclass(frozen=True)
class ChunkFailure:
    """One chunk that exhausted its retry budget (crash/hang/raise).

    ``lo``/``hi`` are the chunk's row bounds in the evaluated batch when
    the caller knows them (-1 otherwise); ``error_type`` is the
    exception class name, or ``"BrokenProcessPool"`` for a worker crash
    and ``"TimeoutError"`` for a hang.
    """

    index: int
    reason: str
    error_type: str
    attempts: int
    lo: int = -1
    hi: int = -1

    def describe(self) -> str:
        """One-line human-readable diagnosis."""
        bounds = f" rows [{self.lo}, {self.hi})" if self.lo >= 0 else ""
        return (
            f"chunk {self.index}{bounds}: {self.error_type} after "
            f"{self.attempts} attempt(s): {self.reason}"
        )


@dataclass
class ChunkRunReport:
    """Everything :func:`run_chunks` learned about one dispatch.

    ``results[i]`` is chunk ``i``'s return value, or ``None`` where the
    chunk failed (its :class:`ChunkFailure` is in ``failures``).
    ``retries`` counts re-executions across all chunks; ``degraded`` is
    True when the process pool was abandoned for serial execution.
    """

    results: list[Any]
    failures: list[ChunkFailure]
    retries: int = 0
    degraded: bool = False

    @property
    def failed_indices(self) -> set[int]:
        """Chunk indices that never produced a result."""
        return {failure.index for failure in self.failures}


def quarantine_rows(
    batch: BatchInput,
    point_fn: Callable[[int], Mapping[str, float]] | None = None,
) -> tuple[np.ndarray, tuple[PointFailure, ...]]:
    """Split a deferred-validation batch into valid rows and diagnoses.

    Returns ``(valid_indices, failures)``: the row indices that pass
    every scalar validation rule (evaluate these with ``take()``), and
    one :class:`PointFailure` per rejected row.  ``point_fn`` maps a row
    index to its axis values for the failure records.
    """
    failures = tuple(
        PointFailure(
            index=violation.row,
            parameter=violation.column,
            value=violation.value,
            reason=violation.message,
            point=dict(point_fn(violation.row)) if point_fn else None,
        )
        for violation in row_violations(batch)
    )
    return np.flatnonzero(valid_row_mask(batch)), failures


def _chunk_failure(
    index: int, exc: BaseException | None, attempts: int, *, reason: str = ""
) -> ChunkFailure:
    if exc is not None:
        reason = str(exc) or type(exc).__name__
        error_type = type(exc).__name__
    else:
        error_type = "TimeoutError"
    return ChunkFailure(
        index=index, reason=reason, error_type=error_type, attempts=attempts
    )


def _fail(
    failure: ChunkFailure,
    report: ChunkRunReport,
    cause: BaseException | None = None,
) -> ExplorationError:
    error = ExplorationError(
        f"chunk execution failed: {failure.describe()}",
        chunk_failures=tuple(report.failures),
        partial=report,
    )
    error.__cause__ = cause
    return error


def _run_serial(
    tasks: Sequence[Any],
    fn: Callable[[Any], Any],
    indices: Sequence[int],
    policy: RetryPolicy,
    on_error: str,
    on_result: Callable[[int, Any], None] | None,
    report: ChunkRunReport,
    metrics: MetricsRegistry,
    sleep: Callable[[float], None],
) -> None:
    """Run ``indices`` of ``tasks`` in-process, honouring the policy."""
    for i in indices:
        attempts = 0
        while True:
            attempts += 1
            try:
                result = fn(tasks[i])
            except Exception as exc:
                if attempts <= policy.max_retries:
                    report.retries += 1
                    metrics.counter("explore.retries").inc()
                    event(
                        _log, "explore.retry",
                        chunk=i, attempt=attempts, error=str(exc),
                        level=logging.WARNING,
                    )
                    sleep(policy.delay(attempts))
                    continue
                failure = _chunk_failure(i, exc, attempts)
                report.failures.append(failure)
                metrics.counter("explore.failed_chunks").inc()
                event(
                    _log, "explore.chunk_failed",
                    chunk=i, attempts=attempts,
                    error_type=failure.error_type, error=failure.reason,
                    level=logging.WARNING,
                )
                if on_error == "fail":
                    raise _fail(failure, report, exc)
                break
            else:
                report.results[i] = result
                if on_result is not None:
                    on_result(i, result)
                break


class _Pool:
    """A respawnable ProcessPoolExecutor wrapper.

    Tracks worker processes so a hung pool can be *terminated* (plain
    ``shutdown(wait=False)`` would leave non-daemon workers joining at
    interpreter exit, turning one hung chunk into a hung program).
    """

    def __init__(
        self,
        workers: int,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> None:
        self.workers = workers
        self.initializer = initializer
        self.initargs = initargs
        self.executor: Executor = ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        )

    def submit(self, fn: Callable[[Any], Any], task: Any):
        return self.executor.submit(fn, task)

    def terminate(self) -> None:
        """Tear the pool down without waiting on running tasks."""
        executor = self.executor
        procs = list((getattr(executor, "_processes", None) or {}).values())
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - shutdown of a broken pool
            pass
        for proc in procs:
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already-dead worker
                pass

    def respawn(self) -> bool:
        """Terminate and restart; False when a new pool cannot start."""
        self.terminate()
        try:
            self.executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=self.initializer,
                initargs=self.initargs,
            )
        except Exception:
            return False
        return True


def run_chunks(
    tasks: Sequence[Any],
    fn: Callable[[Any], Any],
    *,
    workers: int = 1,
    policy: RetryPolicy | None = None,
    on_error: str = "fail",
    on_result: Callable[[int, Any], None] | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    sleep: Callable[[float], None] = time.sleep,
) -> ChunkRunReport:
    """Run ``fn`` over every task with retries, timeouts, and recovery.

    ``fn`` must be picklable (a module-level function or ``partial`` of
    one) when ``workers > 1``.  ``on_result`` fires in the parent as each
    chunk completes — in *completion* order on the pool path — and is
    the hook the executor uses for checkpoint journaling and synthetic
    chunk spans.  ``initializer``/``initargs`` seed each worker process
    once (heavy shared state such as a pickled design space) instead of
    re-pickling it into every task; the caller is responsible for
    seeding the *parent* process too if serial execution or degradation
    may run ``fn`` in-process.  See the module docstring for failure
    semantics.
    """
    policy = policy or RetryPolicy()
    check_on_error(on_error)
    metrics = get_metrics()
    report = ChunkRunReport(results=[None] * len(tasks), failures=[])
    if not tasks:
        return report
    if workers <= 1 or len(tasks) == 1:
        _run_serial(
            tasks, fn, range(len(tasks)), policy, on_error, on_result,
            report, metrics, sleep,
        )
        return report
    try:
        pool = _Pool(workers, initializer, initargs)
    except Exception:
        # The pool never started (fork limits, sandboxing): degrade.
        report.degraded = True
        metrics.gauge("explore.degraded_to_serial").set(1.0)
        event(
            _log, "explore.degraded",
            reason="process pool failed to start",
            level=logging.WARNING,
        )
        _run_serial(
            tasks, fn, range(len(tasks)), policy, on_error, on_result,
            report, metrics, sleep,
        )
        return report

    attempts = [0] * len(tasks)
    pending: deque[int] = deque(range(len(tasks)))
    #: Chunks implicated in a pool break, re-run one at a time so the
    #: next break is attributable to exactly one chunk.
    suspects: deque[int] = deque()
    inflight: dict[Any, int] = {}
    deadlines: dict[Any, float | None] = {}
    consecutive_breaks = 0

    def record_failure(
        index: int, exc: BaseException | None, reason: str = ""
    ) -> None:
        failure = _chunk_failure(index, exc, attempts[index], reason=reason)
        report.failures.append(failure)
        metrics.counter("explore.failed_chunks").inc()
        event(
            _log, "explore.chunk_failed",
            chunk=index, attempts=attempts[index],
            error_type=failure.error_type, error=failure.reason,
            level=logging.WARNING,
        )
        if on_error == "fail":
            pool.terminate()
            raise _fail(failure, report, exc)

    def charge(
        index: int, exc: BaseException | None, reason: str = ""
    ) -> bool:
        """One attempt against ``index``; True if it may retry."""
        attempts[index] += 1
        if attempts[index] <= policy.max_retries:
            report.retries += 1
            metrics.counter("explore.retries").inc()
            event(
                _log, "explore.retry",
                chunk=index, attempt=attempts[index],
                error=reason or (str(exc) if exc else ""),
                level=logging.WARNING,
            )
            return True
        record_failure(index, exc, reason)
        return False

    def submit(index: int) -> bool:
        try:
            future = pool.submit(fn, tasks[index])
        except Exception:
            # The pool died between completions; put the task back and
            # let the break/respawn logic below deal with it.
            pending.appendleft(index)
            return False
        inflight[future] = index
        deadlines[future] = (
            time.monotonic() + policy.timeout_s if policy.timeout_s else None
        )
        return True

    def drain_to_serial() -> None:
        """Abandon the pool and finish everything left in-process."""
        report.degraded = True
        metrics.gauge("explore.degraded_to_serial").set(1.0)
        event(
            _log, "explore.degraded",
            reason="process pool kept failing; finishing serially",
            level=logging.WARNING,
        )
        remaining = list(inflight.values()) + list(suspects) + list(pending)
        inflight.clear()
        deadlines.clear()
        suspects.clear()
        pending.clear()
        pool.terminate()
        _run_serial(
            tasks, fn, remaining, policy, on_error, on_result, report,
            metrics, sleep,
        )

    def handle_break(involved: list[int], cause: BaseException | None) -> None:
        """A pool death: blame precisely if possible, else probe."""
        nonlocal consecutive_breaks
        consecutive_breaks += 1
        inflight.clear()
        deadlines.clear()
        if len(involved) == 1:
            # Isolated probe (or lone in-flight chunk): blame is certain.
            if charge(involved[0], cause):
                suspects.append(involved[0])
        else:
            # Unknown culprit: probe each involved chunk in isolation
            # without charging anyone's retry budget yet.
            suspects.extend(involved)
        if consecutive_breaks >= _MAX_CONSECUTIVE_POOL_BREAKS:
            drain_to_serial()
            return
        if not pool.respawn():
            drain_to_serial()

    try:
        while pending or suspects or inflight:
            if report.degraded:
                break
            # Refill the window.  While suspects exist, run exactly one
            # future at a time so the next pool break is attributable.
            if suspects:
                if not inflight:
                    submit(suspects.popleft())
            else:
                while pending and len(inflight) < workers:
                    if not submit(pending.popleft()):
                        break
            if not inflight:
                if pending or suspects:
                    # submit() failed: treat as a pool break with no
                    # involved chunks and respawn (or degrade).
                    consecutive_breaks += 1
                    if (
                        consecutive_breaks >= _MAX_CONSECUTIVE_POOL_BREAKS
                        or not pool.respawn()
                    ):
                        drain_to_serial()
                continue

            now = time.monotonic()
            active = [d for d in deadlines.values() if d is not None]
            wait_s = max(0.0, min(active) - now) if active else None
            done, _ = _futures_wait(
                set(inflight), timeout=wait_s, return_when=FIRST_COMPLETED
            )

            if not done:
                # A deadline expired with nothing finished: the pool has
                # a hung worker.  Running tasks cannot be cancelled, so
                # terminate everything; hung chunks are charged an
                # attempt, innocent co-scheduled chunks are not.
                now = time.monotonic()
                hung = {
                    inflight[f]
                    for f, d in deadlines.items()
                    if d is not None and now >= d
                }
                if not hung:  # pragma: no cover - spurious wakeup
                    continue
                involved = list(inflight.values())
                inflight.clear()
                deadlines.clear()
                consecutive_breaks += 1
                pool.terminate()
                timeout_reason = (
                    f"no result within {policy.timeout_s:g} s; "
                    "worker pool terminated"
                )
                for index in involved:
                    if index in hung:
                        if charge(index, None, timeout_reason):
                            suspects.append(index)
                    else:
                        pending.appendleft(index)
                if (
                    consecutive_breaks >= _MAX_CONSECUTIVE_POOL_BREAKS
                    or not pool.respawn()
                ):
                    drain_to_serial()
                continue

            broken_involved: list[int] = []
            broken_cause: BaseException | None = None
            for future in done:
                index = inflight.pop(future)
                deadlines.pop(future, None)
                try:
                    result = future.result()
                except BrokenProcessPool as exc:
                    broken_involved.append(index)
                    broken_cause = exc
                except Exception as exc:
                    if charge(index, exc):
                        sleep(policy.delay(attempts[index]))
                        pending.appendleft(index)
                else:
                    report.results[index] = result
                    consecutive_breaks = 0
                    if on_result is not None:
                        on_result(index, result)
            if broken_involved:
                handle_break(
                    broken_involved + list(inflight.values()), broken_cause
                )
    finally:
        pool.terminate()
    return report


def with_bounds(
    failures: Sequence[ChunkFailure], bounds: Sequence[tuple[int, int]]
) -> list[ChunkFailure]:
    """Annotate engine failures with their chunks' row bounds."""
    annotated = []
    for failure in failures:
        lo, hi = bounds[failure.index]
        annotated.append(replace(failure, lo=lo, hi=hi))
    return annotated
