"""Unit conversion and engineering-notation formatting helpers.

The RAT worksheet (Table 1 of the paper) mixes engineering units freely:
interconnect bandwidth in MB/s, clock frequency in MHz, times in seconds
rendered as ``5.56E-6``.  This module centralises the conversions so the
rest of the library works in SI base units (bytes, bytes/second, hertz,
seconds) and only the edges (worksheet parsing, table rendering) deal with
scaled units.

The paper's bandwidth figures are decimal ("133 MHz 64-bit PCI-X ... 1 GB/s"
means 1e9 B/s), so all prefixes here are decimal (SI), not binary.
"""

from __future__ import annotations

import math
from typing import Final

from .errors import UnitError

__all__ = [
    "KB",
    "MB",
    "GB",
    "KHZ",
    "MHZ",
    "GHZ",
    "mbps",
    "gbps",
    "mhz",
    "ghz",
    "to_mbps",
    "to_mhz",
    "parse_bandwidth",
    "parse_frequency",
    "parse_size",
    "format_seconds",
    "format_bytes",
    "format_bandwidth",
    "format_frequency",
    "format_engineering",
    "format_percent",
]

# Decimal (SI) scale factors. The paper quotes "1000 MB/s" for PCI-X's 1 GB/s
# theoretical maximum, confirming decimal semantics.
KB: Final[float] = 1e3
MB: Final[float] = 1e6
GB: Final[float] = 1e9

KHZ: Final[float] = 1e3
MHZ: Final[float] = 1e6
GHZ: Final[float] = 1e9

_BANDWIDTH_UNITS: Final[dict[str, float]] = {
    "b/s": 1.0,
    "kb/s": KB,
    "mb/s": MB,
    "gb/s": GB,
}

_FREQUENCY_UNITS: Final[dict[str, float]] = {
    "hz": 1.0,
    "khz": KHZ,
    "mhz": MHZ,
    "ghz": GHZ,
}

_SIZE_UNITS: Final[dict[str, float]] = {
    "b": 1.0,
    "kb": KB,
    "mb": MB,
    "gb": GB,
}


def mbps(value: float) -> float:
    """Convert a bandwidth expressed in MB/s to bytes/second."""
    return value * MB


def gbps(value: float) -> float:
    """Convert a bandwidth expressed in GB/s to bytes/second."""
    return value * GB


def mhz(value: float) -> float:
    """Convert a frequency expressed in MHz to hertz."""
    return value * MHZ


def ghz(value: float) -> float:
    """Convert a frequency expressed in GHz to hertz."""
    return value * GHZ


def to_mbps(bytes_per_second: float) -> float:
    """Convert bytes/second back to MB/s (for worksheet display)."""
    return bytes_per_second / MB


def to_mhz(hertz: float) -> float:
    """Convert hertz back to MHz (for worksheet display)."""
    return hertz / MHZ


def _parse(text: str, units: dict[str, float], kind: str) -> float:
    """Parse ``"<number> <unit>"`` against a unit table; return base units."""
    stripped = text.strip().lower()
    for suffix in sorted(units, key=len, reverse=True):
        if stripped.endswith(suffix):
            number = stripped[: -len(suffix)].strip()
            try:
                value = float(number)
            except ValueError as exc:
                raise UnitError(f"cannot parse {kind} value {text!r}") from exc
            return value * units[suffix]
    raise UnitError(
        f"unrecognised {kind} unit in {text!r}; expected one of {sorted(units)}"
    )


def parse_bandwidth(text: str) -> float:
    """Parse e.g. ``"1000 MB/s"`` or ``"1 GB/s"`` into bytes/second."""
    return _parse(text, _BANDWIDTH_UNITS, "bandwidth")


def parse_frequency(text: str) -> float:
    """Parse e.g. ``"150 MHz"`` into hertz."""
    return _parse(text, _FREQUENCY_UNITS, "frequency")


def parse_size(text: str) -> float:
    """Parse e.g. ``"2 KB"`` into bytes (decimal prefixes)."""
    return _parse(text, _SIZE_UNITS, "size")


def format_engineering(value: float, sig_figs: int = 3) -> str:
    """Render a number in the paper's ``5.56E-6`` exponent style.

    Zero renders as ``0.00E+0``; infinities and NaN render as ``inf``/``nan``
    so tables degrade gracefully instead of raising mid-render.
    """
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    if value == 0:
        return f"{0:.{sig_figs - 1}f}E+0".replace("0.", "0.")
    exponent = math.floor(math.log10(abs(value)))
    mantissa = value / (10.0**exponent)
    # Guard against mantissa rounding up to 10 (e.g. 9.999 at 3 sig figs).
    rendered = f"{mantissa:.{sig_figs - 1}f}"
    if float(rendered) >= 10.0:
        mantissa /= 10.0
        exponent += 1
        rendered = f"{mantissa:.{sig_figs - 1}f}"
    sign = "+" if exponent >= 0 else "-"
    return f"{rendered}E{sign}{abs(exponent)}"


def format_seconds(seconds: float, sig_figs: int = 3) -> str:
    """Render a duration the way the paper's tables do (``1.31E-4``)."""
    return format_engineering(seconds, sig_figs)


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with the largest whole decimal prefix."""
    for scale, suffix in ((GB, "GB"), (MB, "MB"), (KB, "KB")):
        if abs(num_bytes) >= scale:
            return f"{num_bytes / scale:.4g} {suffix}"
    return f"{num_bytes:.4g} B"


def format_bandwidth(bytes_per_second: float) -> str:
    """Render a bandwidth with the largest whole decimal prefix."""
    return format_bytes(bytes_per_second) + "/s"


def format_frequency(hertz: float) -> str:
    """Render a frequency with the largest whole decimal prefix."""
    for scale, suffix in ((GHZ, "GHz"), (MHZ, "MHz"), (KHZ, "kHz")):
        if abs(hertz) >= scale:
            return f"{hertz / scale:.4g} {suffix}"
    return f"{hertz:.4g} Hz"


def format_percent(fraction: float, decimals: int = 0) -> str:
    """Render a fraction in ``[0, 1]`` as a percentage string (``"15%"``)."""
    return f"{fraction * 100:.{decimals}f}%"
