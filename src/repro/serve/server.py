"""asyncio transport for the prediction service.

:class:`RATServer` binds an :class:`~repro.serve.app.RATApp` to a TCP
listener with ``asyncio.start_server`` and speaks the HTTP/1.1 subset
implemented by :mod:`repro.serve.protocol`: persistent connections,
``Content-Length`` bodies, one request at a time per connection.

Graceful drain: on :meth:`RATServer.drain` (wired to SIGTERM/SIGINT by
:func:`serve`) the listener closes, keep-alive loops answer their
current request with ``Connection: close``, the app stops admitting new
predictions, and the micro-batcher finishes everything already queued
before the process exits — so a deploy never drops an accepted request.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import sys

from ..errors import ParameterError
from ..obs import get_metrics
from ..obs.log import configure_logging, event, get_logger
from .app import RATApp
from .protocol import (
    MAX_HEAD_BYTES,
    ProtocolError,
    Request,
    body_length,
    error_body,
    format_response,
    parse_head,
)

__all__ = ["RATServer", "serve"]

_log = get_logger("serve")


class RATServer:
    """One listening socket serving a :class:`RATApp`."""

    def __init__(
        self,
        app: RATApp,
        *,
        host: str = "127.0.0.1",
        port: int = 8321,
        drain_timeout_s: float = 10.0,
        sock=None,
    ) -> None:
        self.app = app
        self.host = host
        self.port = int(port)
        self.drain_timeout_s = float(drain_timeout_s)
        #: A pre-created listening socket (cluster mode: each shard's
        #: ``SO_REUSEPORT`` socket, or a parent-bound fd shared across
        #: shards).  When set, ``host``/``port`` are informational.
        self.sock = sock
        self._server: asyncio.Server | None = None
        self._connections = 0
        self._draining = asyncio.Event()

    # ---- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the app (port 0 = ephemeral)."""
        if self._server is not None:
            raise ParameterError("server is already running")
        await self.app.startup()
        self._draining = asyncio.Event()
        if self.sock is not None:
            self._server = await asyncio.start_server(
                self._serve_connection, sock=self.sock
            )
        else:
            self._server = await asyncio.start_server(
                self._serve_connection, self.host, self.port
            )
        # With port 0 the kernel picks; expose the bound port so callers
        # (CLI banner, CI smoke job, tests) can discover it.
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def draining(self) -> bool:
        """True once graceful shutdown has begun."""
        return self._draining.is_set()

    def drain(self) -> None:
        """Begin graceful shutdown; :meth:`run` then unblocks."""
        self._draining.set()

    async def run(self) -> None:
        """Serve until :meth:`drain` is called, then shut down cleanly."""
        if self._server is None:
            await self.start()
        await self._draining.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Stop the listener, drain in-flight work, stop the batcher."""
        self._draining.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.app.draining = True
        await self.app.wait_idle(self.drain_timeout_s)
        await self.app.shutdown(drain=True)

    # ---- connection handling -----------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        get_metrics().gauge("serve.connections").set(self._connections)
        try:
            await self._connection_loop(reader, writer)
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            TimeoutError,
        ):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._connections -= 1
            get_metrics().gauge("serve.connections").set(self._connections)
            with contextlib.suppress(ConnectionError):
                writer.close()
                await writer.wait_closed()

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except asyncio.IncompleteReadError as exc:
                if not exc.partial:
                    return  # clean EOF between requests
                raise
            except asyncio.LimitOverrunError:
                await self._respond(
                    writer,
                    error_body("request head too large", 431),
                    keep_alive=False,
                )
                return
            if len(head) > MAX_HEAD_BYTES:
                await self._respond(
                    writer,
                    error_body("request head too large", 431),
                    keep_alive=False,
                )
                return
            try:
                method, path, version, headers, query = parse_head(head[:-4])
                n = body_length(headers, self.app.max_body_bytes)
                body = await reader.readexactly(n) if n else b""
            except ProtocolError as exc:
                # Framing is unreliable after a protocol error (an
                # unread body would be parsed as the next request line),
                # so always close.
                await self._respond(
                    writer,
                    error_body(str(exc), exc.status),
                    keep_alive=False,
                )
                return
            request = Request(
                method=method,
                path=path,
                headers=headers,
                body=body,
                version=version,
                query=query,
            )
            keep_alive = request.keep_alive and not self._draining.is_set()
            response = await self.app.handle(request)
            await self._respond(writer, response, keep_alive=keep_alive)
            if not keep_alive:
                return

    @staticmethod
    async def _respond(writer, response, *, keep_alive: bool) -> None:
        writer.write(format_response(response, keep_alive=keep_alive))
        await writer.drain()


async def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8321,
    max_batch_size: int = 64,
    max_wait_us: float = 200.0,
    max_pending: int = 1024,
    workers: int = 1,
    max_body_bytes: int = 1 << 20,
    max_batch_rows: int = 4096,
    max_explore_points: int = 200_000,
    default_deadline_s: float | None = None,
    drain_timeout_s: float = 10.0,
    quiet: bool = False,
    access_log: str | None = None,
) -> None:
    """Run the service until SIGTERM/SIGINT, then drain and return.

    This is the ``rat serve`` entry point.  The startup banner is a
    stable, parseable line (``rat serve: listening on http://H:P``) so
    scripts launching with ``--port 0`` can discover the bound port.

    ``access_log`` enables the structured JSONL event stream (one
    ``http.access`` line per request, plus batcher/exploration lifecycle
    events) to the given path, or to stderr for ``"-"``.
    """
    access_handler = (
        configure_logging(access_log) if access_log is not None else None
    )
    app = RATApp(
        max_batch_size=max_batch_size,
        max_wait_us=max_wait_us,
        max_pending=max_pending,
        workers=workers,
        max_body_bytes=max_body_bytes,
        max_batch_rows=max_batch_rows,
        max_explore_points=max_explore_points,
        default_deadline_s=default_deadline_s,
    )
    server = RATServer(
        app, host=host, port=port, drain_timeout_s=drain_timeout_s
    )
    await server.start()
    loop = asyncio.get_running_loop()
    registered: list[signal.Signals] = []
    for signame in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signame, server.drain)
            registered.append(signame)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix loop; rely on KeyboardInterrupt
    if not quiet:
        print(
            f"rat serve: listening on http://{server.host}:{server.port} "
            f"(max_batch={max_batch_size}, max_wait_us={max_wait_us:g}, "
            f"workers={workers})",
            flush=True,
        )
    event(
        _log, "server.started",
        host=server.host, port=server.port,
        max_batch_size=max_batch_size, max_wait_us=max_wait_us,
        workers=workers,
    )
    try:
        await server.run()
    except KeyboardInterrupt:
        await server.shutdown()
    finally:
        for signame in registered:
            loop.remove_signal_handler(signame)
        event(
            _log, "server.drained",
            requests=app.requests,
            predictions=app.batcher.served,
            batches=app.batcher.batches,
        )
        if access_handler is not None:
            access_handler.flush()
    if not quiet:
        print(
            f"rat serve: drained cleanly after {app.requests} requests "
            f"({app.batcher.served} predictions in {app.batcher.batches} "
            "batches)",
            flush=True,
        )
