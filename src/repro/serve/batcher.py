"""Micro-batching: coalesce concurrent predictions onto the batch engine.

A prediction service built naively on :func:`repro.core.throughput
.predict` pays the scalar path's per-worksheet overhead on every
request.  PR 2's batch engine evaluates a million rows per call — but
only helps if concurrent requests actually share a call.  The
:class:`MicroBatcher` is that bridge: single-prediction requests are
appended to a pending queue, and a consumer task drains them in
struct-of-arrays batches bounded by a ``max_batch_size`` /
``max_wait_us`` window, so N concurrent callers pay ~one batch's worth
of numpy dispatch and validation instead of N.

Each batcher compiles one :class:`~repro.core.plan.PredictionPlan` at
construction, pre-sized to ``max_batch_size``, and evaluates every
coalesced batch through it: the steady-state request path performs no
result-buffer allocation and no duplicate row validation (rows are
triaged once by ``row_violations`` and the surviving batch is marked
valid), and the ``plan.compiles`` counter stays flat under load.

Correctness contracts:

* **Bitwise parity.**  A prediction served through a coalesced batch is
  IEEE-754-identical to what scalar ``predict()`` returns for the same
  worksheet — inherited from the plan kernel's operation-order guarantee
  (itself bitwise-equal to :func:`repro.core.batch.batch_predict`),
  preserved here by staging worksheet fields with exactly the
  conversions :meth:`RATInput.from_dict` applies.
* **Row-level quarantine.**  One invalid worksheet in a coalesced batch
  fails only that request: rows are staged unvalidated, triaged with
  :func:`repro.core.batch.valid_row_mask` (PR 3's quarantine machinery),
  and each rejected request receives the *byte-identical* diagnostic the
  scalar ``RATInput.from_dict`` path raises for its worksheet.

Admission control: the pending queue is bounded (``max_pending``);
over-capacity submissions raise :class:`~repro.errors.AdmissionError`
carrying a ``Retry-After`` estimate derived from the queue depth and an
EWMA of recent batch latency.  Requests may carry a deadline; ones that
expire while queued are failed with
:class:`~repro.errors.DeadlineError` instead of being evaluated.

Observability: ``serve.queue_depth`` (gauge) tracks the pending queue,
``serve.batch_size`` / ``serve.batch_seconds`` / ``serve.batch_wait_seconds``
(histograms) the coalescing behaviour, ``serve.predictions`` /
``serve.quarantined`` / ``serve.deadline_expired`` (counters) the row
outcomes, and each executed batch records a ``serve.batch`` span.
"""

from __future__ import annotations

import asyncio
import logging
import time
from collections import deque
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..core.batch import BatchInput, mark_rows_valid, row_violations
from ..core.buffering import BufferingMode
from ..core.plan import compile_plan
from ..core.params import RATInput
from ..errors import AdmissionError, DeadlineError, ParameterError, ServeError
from ..obs import get_metrics, get_tracer
from ..obs.log import event, get_logger
from ..obs.propagation import current_context
from ..units import MB, MHZ

__all__ = [
    "MicroBatcher",
    "PredictionModes",
    "resolve_modes",
    "scalar_diagnostic",
    "worksheet_row",
]

_log = get_logger("serve.batcher")

#: A request's buffering-mode selection: one or both of SINGLE/DOUBLE.
PredictionModes = tuple[BufferingMode, ...]

#: ``mode`` request values -> the BufferingModes to evaluate.  The
#: default ``"both"`` returns the full Equations (1)-(11) result: Eq (5)
#: vs (6) execution times and the per-mode Eq (8)-(11) utilizations.
_MODES: dict[str, PredictionModes] = {
    "single": (BufferingMode.SINGLE,),
    "double": (BufferingMode.DOUBLE,),
    "both": (BufferingMode.SINGLE, BufferingMode.DOUBLE),
}

#: Worksheet keys staged into batch columns, in BatchInput column order.
#: ``int`` marks fields ``RATInput.from_dict`` coerces through ``int()``
#: (truncation included), ``MB``/``MHZ`` the worksheet's display-unit
#: scale factors — matching those conversions exactly is what makes the
#: batched result bitwise-equal to the scalar path.
_FIELDS: tuple[tuple[str, str, float], ...] = (
    ("elements_in", "int", 1.0),
    ("elements_out", "int", 1.0),
    ("bytes_per_element", "float", 1.0),
    ("throughput_ideal_mbps", "float", MB),
    ("alpha_write", "float", 1.0),
    ("alpha_read", "float", 1.0),
    ("ops_per_element", "float", 1.0),
    ("throughput_proc", "float", 1.0),
    ("clock_mhz", "float", MHZ),
    ("t_soft", "float", 1.0),
    ("n_iterations", "int", 1.0),
)

#: Per-row prediction fields copied into responses (as_records order).
_RESULT_FIELDS = (
    "t_input",
    "t_output",
    "t_comm",
    "t_comp",
    "t_rc",
    "speedup",
    "util_comp",
    "util_comm",
)


def resolve_modes(mode: str) -> PredictionModes:
    """Map a request's ``mode`` string to the modes to evaluate."""
    try:
        return _MODES[mode]
    except KeyError:
        raise ParameterError(
            f"mode must be one of {sorted(_MODES)}, got {mode!r}"
        ) from None


def worksheet_row(worksheet: Mapping[str, object]) -> tuple[float, ...]:
    """Stage one worksheet dict as an 11-float batch row (SI units).

    Applies exactly the conversions :meth:`RATInput.from_dict` applies —
    ``int()`` truncation for count fields, MB/s and MHz scaling — but
    defers *validation* so an out-of-range value survives staging and is
    quarantined at batch level with a per-row diagnostic.

    The straight-line tuple build is the request hot path (it runs once
    per prediction, outside any batch amortization); failures fall
    through to :func:`_diagnose_row`, which re-walks the fields to name
    the offender.
    """
    try:
        return (
            float(int(worksheet["elements_in"])),
            float(int(worksheet["elements_out"])),
            float(worksheet["bytes_per_element"]),
            float(worksheet["throughput_ideal_mbps"]) * MB,
            float(worksheet["alpha_write"]),
            float(worksheet["alpha_read"]),
            float(worksheet["ops_per_element"]),
            float(worksheet["throughput_proc"]),
            float(worksheet["clock_mhz"]) * MHZ,
            float(worksheet["t_soft"]),
            float(int(worksheet["n_iterations"])),
        )
    except KeyError as exc:
        raise ParameterError(
            f"missing worksheet field {exc.args[0]!r}"
        ) from None
    except (TypeError, ValueError, OverflowError):
        raise _diagnose_row(worksheet) from None


def _diagnose_row(worksheet: object) -> ParameterError:
    """Name the field that made :func:`worksheet_row`'s fast path fail."""
    if not isinstance(worksheet, Mapping):
        return ParameterError(
            "worksheet must be a JSON object of Table-1 fields"
        )
    for key, kind, _scale in _FIELDS:
        raw = worksheet.get(key)
        try:
            float(int(raw)) if kind == "int" else float(raw)
        except (TypeError, ValueError, OverflowError):
            return ParameterError(
                f"non-numeric worksheet field {key!r}: {raw!r}"
            )
    return ParameterError("worksheet could not be staged")  # unreachable


def scalar_diagnostic(worksheet: Mapping[str, object], fallback: str) -> str:
    """The error message the *scalar* path raises for a bad worksheet.

    Quarantined rows must report byte-identical text to what
    ``RATInput.from_dict`` + ``predict()`` would have raised, so the
    diagnosis is re-derived by running the scalar constructor itself.
    ``fallback`` (the batch-level :class:`RowViolation` message, same
    rule set) covers the defensive case where the scalar path somehow
    accepts the row.
    """
    try:
        RATInput.from_dict(worksheet)
    except ParameterError as exc:
        return str(exc)
    except (TypeError, ValueError, OverflowError) as exc:
        return f"invalid worksheet value: {exc}"
    return fallback


@dataclass(eq=False)
class _Pending:
    """One queued prediction request awaiting a batch slot."""

    __slots__ = (
        "row", "worksheet", "modes", "future", "enqueued", "deadline",
        "trace_id",
    )

    row: tuple[float, ...]
    worksheet: Mapping[str, object]
    modes: PredictionModes
    future: asyncio.Future
    enqueued: float
    deadline: float | None  # absolute perf_counter() time, or None
    trace_id: str  # submitting request's trace identity ("" if untraced)


class MicroBatcher:
    """Coalesce concurrent single predictions into batch-engine calls.

    ``max_batch_size`` bounds rows per batch; ``max_wait_us`` bounds how
    long the first queued request waits for company (0 disables
    coalescing delay — batches still form from whatever is queued when
    the consumer wakes).  ``max_pending`` is the admission bound; beyond
    it, :meth:`submit` raises :class:`AdmissionError` (HTTP 429).
    ``workers`` is the number of consumer tasks; one is optimal for the
    pure-numpy prediction path, more only help when a custom evaluator
    awaits.
    """

    def __init__(
        self,
        *,
        max_batch_size: int = 64,
        max_wait_us: float = 200.0,
        max_pending: int = 1024,
        workers: int = 1,
    ) -> None:
        if max_batch_size < 1:
            raise ParameterError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if max_wait_us < 0:
            raise ParameterError(
                f"max_wait_us must be >= 0, got {max_wait_us}"
            )
        if max_pending < 1:
            raise ParameterError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        self.max_batch_size = max_batch_size
        self.max_wait_us = max_wait_us
        self.max_pending = max_pending
        self.workers = workers
        self._pending: deque[_Pending] = deque()
        self._wakeup = asyncio.Event()
        self._tasks: list[asyncio.Task] = []
        self._closed = False
        self._batch_seconds_ewma = 1e-3
        self.batches = 0
        self.served = 0
        # One compiled plan per batcher, pre-sized to the batch window:
        # every coalesced batch reuses its buffers, so the steady-state
        # request path allocates nothing and plan.compiles stays flat.
        self._plan = compile_plan(capacity=max_batch_size)
        # Hot-path instruments, resolved once: registry lookups are
        # cheap but run per request, and instruments are stable.
        metrics = get_metrics()
        self._queue_depth = metrics.gauge("serve.queue_depth")
        self._batch_size_hist = metrics.histogram("serve.batch_size")
        self._batch_seconds_hist = metrics.histogram("serve.batch_seconds")
        self._batch_wait_hist = metrics.histogram("serve.batch_wait_seconds")
        self._predictions_total = metrics.counter("serve.predictions")

    # ---- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the consumer task(s); requires a running event loop."""
        if self._tasks:
            return
        self._closed = False
        self._tasks = [
            asyncio.create_task(self._consume(), name=f"microbatch-{i}")
            for i in range(self.workers)
        ]

    async def close(self, *, drain: bool = True) -> None:
        """Stop the consumers; optionally serve what is already queued.

        With ``drain=True`` (graceful shutdown) consumers finish every
        queued request before exiting; with ``drain=False`` queued
        requests fail with a 503-mapped :class:`ServeError`.
        """
        self._closed = True
        if not drain:
            while self._pending:
                pending = self._pending.popleft()
                if not pending.future.done():
                    pending.future.set_exception(
                        ServeError("service is shutting down")
                    )
        self._wakeup.set()
        for task in self._tasks:
            await task
        self._tasks = []
        self._depth_gauge()

    @property
    def depth(self) -> int:
        """Requests currently waiting for a batch slot."""
        return len(self._pending)

    @property
    def running(self) -> bool:
        """Whether consumer tasks are active."""
        return bool(self._tasks) and not self._closed

    @property
    def batch_seconds_ewma(self) -> float:
        """Smoothed recent batch latency (seconds).

        The figure behind ``Retry-After`` estimates; shards also ship it
        in heartbeats so the supervisor's autoscaler can weigh queue
        depth against how fast this shard is clearing it.
        """
        return self._batch_seconds_ewma

    # ---- submission --------------------------------------------------------

    def retry_after_s(self) -> float:
        """Estimated seconds until queue capacity frees up.

        Queue depth in batches times the EWMA batch latency: the figure
        behind the 429 response's ``Retry-After`` header.
        """
        batches_ahead = max(len(self._pending) / self.max_batch_size, 1.0)
        return batches_ahead * self._batch_seconds_ewma

    async def submit(
        self,
        worksheet: Mapping[str, object],
        modes: PredictionModes = _MODES["both"],
        *,
        deadline_s: float | None = None,
    ) -> tuple[dict[str, dict[str, float]], int]:
        """Queue one worksheet; await its slice of a coalesced batch.

        Returns ``(predictions, batch_size)`` where ``predictions`` maps
        mode value -> the row's Equations (1)-(11) record and
        ``batch_size`` is how many requests shared the batch.  Raises
        :class:`ParameterError` for malformed/invalid worksheets,
        :class:`AdmissionError` when the queue is full, and
        :class:`DeadlineError` when ``deadline_s`` expires first.
        """
        if self._closed or not self._tasks:
            raise ServeError("service is shutting down")
        if len(self._pending) >= self.max_pending:
            get_metrics().counter("serve.rejected").inc()
            event(
                _log,
                "batch.rejected",
                pending=len(self._pending),
                retry_after_s=self.retry_after_s(),
                level=logging.WARNING,
            )
            raise AdmissionError(
                f"prediction queue is full ({self.max_pending} pending)",
                retry_after_s=self.retry_after_s(),
            )
        row = worksheet_row(worksheet)
        ctx = current_context()
        now = time.perf_counter()
        pending = _Pending(
            row=row,
            worksheet=worksheet,
            modes=modes,
            future=asyncio.get_running_loop().create_future(),
            enqueued=now,
            deadline=now + deadline_s if deadline_s is not None else None,
            trace_id=ctx.trace_id if ctx is not None else "",
        )
        self._pending.append(pending)
        self._depth_gauge()
        self._wakeup.set()
        record, batch_size, batch_span = await pending.future
        if batch_span >= 0:
            # The serve.batch span lives in the consumer task, outside
            # every request's context; this synthetic zero-length span
            # re-emits the linkage *inside* the request's trace so the
            # exported tree connects request -> its coalesced batch.
            with get_tracer().span(
                "serve.batch_slice",
                {"batch_span": batch_span, "batch_size": batch_size,
                 "synthetic": True},
                "serve",
            ):
                pass
        return record, batch_size

    # ---- consumer ----------------------------------------------------------

    def _depth_gauge(self) -> None:
        self._queue_depth.set(len(self._pending))

    async def _consume(self) -> None:
        while True:
            while not self._pending:
                if self._closed:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
            first = self._pending[0]
            if (
                self.max_wait_us > 0
                and self.max_batch_size > 1
                and len(self._pending) < self.max_batch_size
                and not self._closed
            ):
                # Give the head-of-line request up to its coalescing
                # window to attract company: one timer per batch, so the
                # hot path never allocates per-request timers.
                remaining = (
                    first.enqueued + self.max_wait_us * 1e-6
                    - time.perf_counter()
                )
                if remaining > 0:
                    await asyncio.sleep(remaining)
            batch = [
                self._pending.popleft()
                for _ in range(min(self.max_batch_size, len(self._pending)))
            ]
            self._depth_gauge()
            if batch:
                try:
                    self._execute(batch)
                except Exception as exc:  # defensive: never kill the loop
                    for pending in batch:
                        if not pending.future.done():
                            pending.future.set_exception(
                                ServeError(f"batch evaluation failed: {exc}")
                            )

    def _execute(self, batch: list[_Pending]) -> None:
        """Evaluate one coalesced batch and distribute per-row results."""
        started = time.perf_counter()
        metrics = get_metrics()
        live: list[_Pending] = []
        for pending in batch:
            if pending.future.done():
                continue  # caller gave up (disconnect/cancellation)
            if pending.deadline is not None and started > pending.deadline:
                metrics.counter("serve.deadline_expired").inc()
                expired_fields = {"queued_s": started - pending.enqueued}
                if pending.trace_id:
                    expired_fields["trace_id"] = pending.trace_id
                event(_log, "batch.deadline_expired", **expired_fields)
                pending.future.set_exception(
                    DeadlineError(
                        "deadline expired after "
                        f"{started - pending.enqueued:.3f}s in queue"
                    )
                )
                continue
            live.append(pending)
        if not live:
            return
        n = len(live)
        attributes: dict[str, object] = {"size": n}
        trace_ids = sorted({p.trace_id for p in live if p.trace_id})
        if trace_ids:
            # The batch span belongs to every coalesced request at once;
            # it lists their trace ids instead of claiming one trace.
            attributes["trace_ids"] = trace_ids
        batch_span = get_tracer().span("serve.batch", attributes, "serve")
        batch_span_id = -1
        with batch_span:
            if batch_span.is_recording:
                batch_span_id = batch_span.span_id
            matrix = np.asarray([p.row for p in live], dtype=np.float64)
            staged = BatchInput(*matrix.T, check=False)
            # PR 3's row-level quarantine: triage invalid rows instead of
            # letting one bad worksheet fail the whole coalesced batch.
            violations = row_violations(staged)
            if violations:
                bad = {violation.row: violation for violation in violations}
                metrics.counter("serve.quarantined").inc(len(bad))
                event(
                    _log,
                    "batch.quarantined",
                    rows=len(bad),
                    batch_size=n,
                )
                for i, violation in bad.items():
                    live[i].future.set_exception(
                        ParameterError(
                            scalar_diagnostic(
                                live[i].worksheet, violation.message
                            )
                        )
                    )
                keep = [i for i in range(n) if i not in bad]
                live = [live[i] for i in keep]
                if not live:
                    return
                # The kept rows were just vetted by row_violations, so
                # mark them valid instead of paying a second rule pass.
                staged = mark_rows_valid(
                    staged.take(np.asarray(keep, dtype=np.intp), check=False)
                )
            else:
                staged = mark_rows_valid(staged)
            needed = set()
            for pending in live:
                needed.update(pending.modes)
            # One ndarray->list conversion per column (C speed) instead
            # of per-row getattr + float() — the per-request marginal
            # cost here is what the micro-batching win is made of.
            mode_rows: dict[BufferingMode, list[dict[str, float]]] = {}
            for mode in sorted(needed, key=lambda m: m.value):
                # Plan results are views into plan buffers; the .tolist()
                # below materializes them before the next evaluate.
                prediction = self._plan.evaluate(staged, mode)
                columns = [
                    getattr(prediction, name).tolist()
                    for name in _RESULT_FIELDS
                ]
                mode_rows[mode] = [
                    dict(zip(_RESULT_FIELDS, values))
                    for values in zip(*columns)
                ]
            for i, pending in enumerate(live):
                if pending.future.done():
                    continue
                record = {
                    mode.value: mode_rows[mode][i]
                    for mode in pending.modes
                }
                pending.future.set_result((record, n, batch_span_id))
        elapsed = time.perf_counter() - started
        self.batches += 1
        self.served += n
        self._batch_seconds_ewma += 0.2 * (elapsed - self._batch_seconds_ewma)
        self._batch_size_hist.observe(n)
        self._batch_seconds_hist.observe(elapsed)
        self._batch_wait_hist.observe(started - batch[0].enqueued)
        self._predictions_total.inc(n)
