"""Self-healing shard supervisor for the prediction cluster.

``rat serve --shards N`` runs this parent process: it owns the port,
forks N :mod:`repro.serve.cluster` shard children, and enforces the
cluster's robustness contract —

* **Crash recovery.**  A shard that exits unexpectedly is restarted
  with exponential backoff.  Restarts are budgeted per shard over a
  sliding window; a crash-looping shard trips the **circuit breaker**
  and is *benched* — the cluster degrades to fewer shards instead of
  flapping, and keeps serving on the survivors.
* **Hang detection.**  Every shard heartbeats over a pipe; silence past
  the liveness deadline gets the shard SIGKILLed and restarted (a hang
  spends restart budget exactly like a crash).
* **Readiness floor.**  The supervisor pushes its cluster view to every
  shard; ``/healthz/ready`` answers 503 whenever fewer than
  ``min_shards`` shards are ready, so an edge LB sheds load before the
  shards' queues do.
* **Rolling restart** (SIGHUP).  Surge-style, one shard at a time:
  spawn a replacement, wait until it heartbeats ready, *then* drain the
  old shard — live capacity never dips below the configured shard
  count, and every in-flight request finishes (PR 5's per-shard drain).
* **Graceful drain** (SIGTERM/SIGINT).  Every shard gets the drain
  command, finishes its queue, and exits; stragglers past the deadline
  are killed so the parent always terminates.
* **Aggregated metrics** (``metrics_port``).  Shards ship a metrics
  snapshot in every heartbeat; the supervisor serves one merged
  Prometheus exposition — counters and histograms summed across every
  incarnation that ever reported (monotone across restarts), gauges
  kept per live shard with ``shard="N"`` labels — plus a JSON
  ``/status``, from a tiny listener inside the supervision loop.
* **Queue-depth autoscaling** (``max_shards``).  A time-aware EWMA of
  pending-queue depth per ready shard drives spawn (above
  ``scale_up_depth``) and retire-the-newest-idle-shard (below
  ``scale_down_depth``, through the ordinary drain path), bounded by
  ``min_shards``/``max_shards`` with cooldown hysteresis; benched
  slots keep counting against the ceiling so the circuit breaker's
  verdict stands.

Shard lifecycle (``shard.spawn`` / ``shard.exit`` / ``shard.restart`` /
``shard.benched`` / ``shard.hung`` / ``cluster.ready`` /
``cluster.degraded`` / ``cluster.drained``) is reported through the
structured JSONL event log with trace correlation, and the supervisor
aggregates per-shard heartbeat stats into ``cluster.*`` gauges.

The supervisor is deliberately not an asyncio program: it is a small
``selectors``-based loop over heartbeat pipes, a self-pipe for
thread/signal-safe commands, and monotonic deadlines — trivially
testable by driving the loop from a thread, with stub shard commands
standing in for real children.
"""

from __future__ import annotations

import contextlib
import copy
import json
import logging
import math
import os
import selectors
import signal
import subprocess
import sys
import time
from collections import deque
from dataclasses import dataclass, field

from ..errors import ParameterError
from ..obs import get_metrics
from ..obs.log import event, get_logger
from ..obs.metrics import MetricsRegistry
from ..obs.promexport import (
    merge_snapshots,
    render_cluster_metrics,
    render_prometheus,
)
from ..obs.propagation import activate, deactivate, new_context
from .cluster import ShardConfig, create_listen_socket, reuse_port_supported

__all__ = ["RestartPolicy", "Shard", "Supervisor", "run_cluster"]

_log = get_logger("serve.supervisor")

#: Heartbeat stat keys the supervisor accepts from shards.  Everything
#: else is dropped (with a one-time warning per key): a misbehaving or
#: chaos-injected shard must not grow supervisor state or the metrics
#: registry without bound through made-up beat fields.
_BEAT_KEYS = frozenset({
    "shard",
    "state",
    "requests",
    "inflight",
    "queue_depth",
    "predictions",
    "batches",
    "batch_seconds_ewma",
})

# Shard lifecycle states.
STARTING = "starting"
READY = "ready"
DRAINING = "draining"
BENCHED = "benched"
STOPPED = "stopped"


@dataclass(frozen=True)
class RestartPolicy:
    """Backoff and circuit-breaker budget for shard restarts.

    A shard gets at most ``budget`` restarts within any sliding
    ``window_s``; exceeding it benches the shard.  Backoff doubles per
    consecutive restart (``backoff_initial_s`` -> ``backoff_max_s``)
    and resets once a shard stays up past ``window_s``.
    """

    backoff_initial_s: float = 0.1
    backoff_max_s: float = 5.0
    backoff_factor: float = 2.0
    budget: int = 5
    window_s: float = 30.0

    def __post_init__(self) -> None:
        if self.backoff_initial_s <= 0 or self.backoff_max_s <= 0:
            raise ParameterError("backoff bounds must be > 0")
        if self.backoff_factor < 1.0:
            raise ParameterError("backoff_factor must be >= 1")
        if self.budget < 1:
            raise ParameterError("restart budget must be >= 1")
        if self.window_s <= 0:
            raise ParameterError("restart window must be > 0")

    def next_backoff(self, current_s: float) -> float:
        if current_s <= 0:
            return self.backoff_initial_s
        return min(current_s * self.backoff_factor, self.backoff_max_s)


@dataclass
class Shard:
    """One shard slot: stable identity across process incarnations."""

    shard_id: int
    state: str = STARTING
    proc: subprocess.Popen | None = None
    heartbeat_fd: int = -1
    control_fd: int = -1
    spawned_at: float = 0.0
    last_beat: float = 0.0
    stats: dict = field(default_factory=dict)
    restart_times: deque = field(default_factory=deque)
    backoff_s: float = 0.0
    restart_at: float | None = None  # pending respawn deadline
    expected_exit: bool = False  # drained on purpose (stop / rolling)
    hung: bool = False
    chaos: list[str] = field(default_factory=list)
    buffer: bytearray = field(default_factory=bytearray)
    #: Latest metrics snapshot from the *current* incarnation.
    metrics_live: dict = field(default_factory=dict)
    #: Summed snapshots of this slot's *dead* incarnations, so cluster
    #: counters never go backwards when a shard restarts.
    metrics_acc: dict = field(default_factory=dict)

    @property
    def pid(self) -> int | None:
        return self.proc.pid if self.proc is not None else None


class _Scrape:
    """One in-flight connection on the supervisor metrics listener."""

    __slots__ = ("sock", "buffer")

    def __init__(self, sock) -> None:
        self.sock = sock
        self.buffer = bytearray()


class Supervisor:
    """Parent process of the shard cluster (see module docstring)."""

    def __init__(
        self,
        *,
        shards: int = 2,
        min_shards: int = 1,
        host: str = "127.0.0.1",
        port: int = 8321,
        policy: RestartPolicy | None = None,
        heartbeat_interval_s: float = 0.25,
        liveness_timeout_s: float = 3.0,
        boot_timeout_s: float = 20.0,
        drain_timeout_s: float = 10.0,
        reuse_port: bool | None = None,
        quiet: bool = True,
        access_log: str | None = None,
        shard_command: list[str] | None = None,
        chaos: dict[int, list[str]] | None = None,
        metrics_port: int | None = None,
        max_shards: int | None = None,
        scale_up_depth: float = 8.0,
        scale_down_depth: float = 1.0,
        scale_cooldown_s: float = 5.0,
        scale_smoothing_s: float = 1.0,
        **serve_kwargs,
    ) -> None:
        if shards < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        if not 1 <= min_shards <= shards:
            raise ParameterError(
                f"min_shards must be in [1, {shards}], got {min_shards}"
            )
        if max_shards is not None and max_shards < shards:
            raise ParameterError(
                f"max_shards must be >= shards ({shards}), got {max_shards}"
            )
        if scale_down_depth < 0 or scale_up_depth <= scale_down_depth:
            raise ParameterError(
                "need scale_up_depth > scale_down_depth >= 0, got "
                f"{scale_up_depth} / {scale_down_depth}"
            )
        if scale_cooldown_s < 0:
            raise ParameterError("scale_cooldown_s must be >= 0")
        if scale_smoothing_s <= 0:
            raise ParameterError("scale_smoothing_s must be > 0")
        self.n_shards = int(shards)
        self.min_shards = int(min_shards)
        self.host = host
        self.port = int(port)
        self.policy = policy or RestartPolicy()
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.liveness_timeout_s = float(liveness_timeout_s)
        self.boot_timeout_s = float(boot_timeout_s)
        self.drain_timeout_s = float(drain_timeout_s)
        self.reuse_port = (
            reuse_port_supported() if reuse_port is None else bool(reuse_port)
        )
        self.quiet = quiet
        self.access_log = access_log
        #: Override the shard argv prefix (tests inject a stub child
        #: that speaks the heartbeat/control protocol without numpy).
        self.shard_command = shard_command
        #: Test-only fault injection: shard slot -> queue of chaos
        #: directives, one consumed per (re)spawn.
        self.chaos = {k: list(v) for k, v in (chaos or {}).items()}
        self.serve_kwargs = serve_kwargs
        self.restarts = 0
        self.active: list[Shard] = []
        self.benched: list[Shard] = []
        self._next_id = 0
        self._holder = None  # SO_REUSEPORT port reservation socket
        self._listen_sock = None  # fallback shared listening socket
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        self._commands: deque[str] = deque()
        self._stopping = False
        self._stop_deadline: float | None = None
        self._finished = False
        self._started = False
        self._cluster_ready: bool | None = None
        self._ready_count = -1
        self._rolling: deque[int] = deque()  # shard ids left to recycle
        self._rolling_step: dict | None = None
        self._status: dict = {"running": False}
        self._trace_context = None
        #: Requests served by shard incarnations that have exited, so
        #: cumulative totals survive restarts and the final drain.
        self._done_totals = {"requests": 0, "predictions": 0, "batches": 0}
        self._totals = dict(self._done_totals)
        #: Aggregated /metrics listener (None disables; 0 = ephemeral).
        self.metrics_port = metrics_port
        self._metrics_sock = None
        #: Summed metrics snapshots of slots that left the cluster
        #: (drained, stopped, benched) — the base every merged counter
        #: stands on, so retirement never drops history.
        self._metrics_retired: dict = {"c": {}, "h": {}}
        #: Heartbeat keys already warned about (one event per key).
        self._unknown_stat_keys: set[str] = set()
        #: Autoscaler bounds + hysteresis (max_shards None = disabled).
        self.max_shards = None if max_shards is None else int(max_shards)
        self.scale_up_depth = float(scale_up_depth)
        self.scale_down_depth = float(scale_down_depth)
        self.scale_cooldown_s = float(scale_cooldown_s)
        self.scale_smoothing_s = float(scale_smoothing_s)
        self._depth_ewma = 0.0
        self._ewma_at: float | None = None
        self._last_scale_at = -math.inf
        self.scale_ups = 0
        self.scale_downs = 0
        metrics = get_metrics()
        self._g_live = metrics.gauge("cluster.shards_live")
        self._g_ready = metrics.gauge("cluster.shards_ready")
        self._g_benched = metrics.gauge("cluster.shards_benched")
        self._g_depth_ewma = metrics.gauge("cluster.queue_depth_ewma")
        self._c_restarts = metrics.counter("cluster.restarts")
        self._c_benched = metrics.counter("cluster.benched")
        self._c_scale_up = metrics.counter("cluster.scale_up")
        self._c_scale_down = metrics.counter("cluster.scale_down")

    # ---- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Resolve the port, spawn the initial shard set."""
        if self._started:
            raise ParameterError("supervisor is already running")
        self._started = True
        # One trace identity for the whole cluster lifetime, so every
        # lifecycle event correlates in the JSONL log.  The context is
        # (re)activated per thread — contextvars don't cross threads, and
        # ``run()`` may execute on a different one than ``start()``.
        self._trace_context = new_context()
        token = activate(self._trace_context)
        try:
            self._start_locked()
        finally:
            deactivate(token)

    def _start_locked(self) -> None:
        if self.reuse_port:
            # Bound (not listening) placeholder: resolves --port 0 to a
            # concrete port and reserves it while shards come and go.
            self._holder = create_listen_socket(
                self.host, self.port, reuse_port=True, listen=False
            )
            self.port = self._holder.getsockname()[1]
        else:
            self._listen_sock = create_listen_socket(
                self.host, self.port, reuse_port=False
            )
            self.port = self._listen_sock.getsockname()[1]
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)
        if self.metrics_port is not None:
            # Supervisor-side scrape endpoint: merged cluster /metrics
            # plus /status, served from the supervision loop itself (no
            # thread, no asyncio — a scrape is one read + one write).
            self._metrics_sock = create_listen_socket(
                self.host, self.metrics_port, reuse_port=False
            )
            self.metrics_port = self._metrics_sock.getsockname()[1]
            self._selector.register(
                self._metrics_sock, selectors.EVENT_READ, "metrics"
            )
        event(
            _log, "cluster.starting",
            host=self.host, port=self.port, shards=self.n_shards,
            min_shards=self.min_shards, reuse_port=self.reuse_port,
            metrics_port=self.metrics_port, max_shards=self.max_shards,
        )
        for _ in range(self.n_shards):
            self._spawn_slot()
        self._refresh_cluster_state()
        self._publish_status()

    def run(self) -> None:
        """The supervision loop; returns once the cluster is drained."""
        if not self._started:
            self.start()
        token = activate(self._trace_context)
        try:
            while not self._finished:
                for key, _ in self._selector.select(timeout=0.05):
                    if key.fd == self._wake_r:
                        self._drain_wake_pipe()
                    elif key.data == "metrics":
                        self._accept_scrapes()
                    elif isinstance(key.data, _Scrape):
                        self._read_scrape(key.data)
                    else:
                        self._read_heartbeats(key.data)
                self._run_commands()
                self._reap_exits()
                self._check_liveness()
                self._run_restarts()
                self._advance_rolling()
                self._advance_autoscale()
                self._advance_stop()
                self._refresh_cluster_state()
                self._publish_status()
        finally:
            try:
                self._cleanup()
            finally:
                deactivate(token)

    # ---- thread/signal-safe external API -----------------------------------

    def stop(self) -> None:
        """Begin graceful cluster drain (callable from any thread)."""
        self._post("stop")

    def rolling_restart(self) -> None:
        """Recycle every shard, one at a time (callable from any thread)."""
        self._post("rolling")

    def status(self) -> dict:
        """A point-in-time cluster snapshot (safe from any thread).

        A deep copy: the supervision loop rebinds nested ``stats``
        dicts concurrently, and callers may freely mutate what they get
        back without corrupting supervisor state.
        """
        return copy.deepcopy(self._status)

    def wait_ready(
        self, count: int | None = None, timeout_s: float = 30.0
    ) -> bool:
        """Block until ``count`` shards are ready (default: all)."""
        want = self.n_shards if count is None else count
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            snapshot = self.status()
            if snapshot.get("ready_shards", 0) >= want:
                return True
            if snapshot.get("finished"):
                return False
            time.sleep(0.02)
        return False

    def wait_finished(self, timeout_s: float = 30.0) -> bool:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.status().get("finished"):
                return True
            time.sleep(0.02)
        return False

    def shard_pids(self) -> dict[int, int]:
        """Live shard id -> pid (for the chaos harness to aim at)."""
        return {
            s["id"]: s["pid"]
            for s in self.status().get("shards", [])
            if s.get("pid")
        }

    def _post(self, command: str) -> None:
        self._commands.append(command)
        with contextlib.suppress(OSError):
            os.write(self._wake_w, b"x")

    # ---- spawning ----------------------------------------------------------

    def _spawn_slot(self) -> Shard:
        shard = Shard(shard_id=self._next_id)
        self._next_id += 1
        self.active.append(shard)
        self._spawn(shard)
        return shard

    def _shard_argv(self, config: ShardConfig) -> list[str]:
        if self.shard_command is not None:
            return [*self.shard_command, config.to_json()]
        # `-c` rather than `-m repro.serve.cluster`: the package
        # __init__ already imports the module, and runpy would execute
        # it a second time (with a RuntimeWarning to match).
        return [
            sys.executable,
            "-c",
            "import sys; from repro.serve.cluster import main;"
            " sys.exit(main(sys.argv[1:]))",
            config.to_json(),
        ]

    def _child_env(self) -> dict[str, str]:
        # The child must import `repro` exactly as the parent did, even
        # when the parent runs from a source tree without installation.
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__
        )))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        if src_dir not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                f"{src_dir}{os.pathsep}{existing}" if existing else src_dir
            )
        return env

    def _spawn(self, shard: Shard) -> None:
        heartbeat_r, heartbeat_w = os.pipe()
        control_r, control_w = os.pipe()
        chaos_queue = self.chaos.get(shard.shard_id, [])
        chaos = chaos_queue.pop(0) if chaos_queue else ""
        config = ShardConfig(
            shard_id=shard.shard_id,
            host=self.host,
            port=self.port,
            heartbeat_fd=heartbeat_w,
            control_fd=control_r,
            listen_fd=(
                None
                if self.reuse_port
                else self._listen_sock.fileno()
            ),
            heartbeat_interval_s=self.heartbeat_interval_s,
            cluster_ready=bool(self._cluster_ready),
            chaos=chaos,
            access_log=self.access_log,
            drain_timeout_s=self.drain_timeout_s,
            **self.serve_kwargs,
        )
        pass_fds = [heartbeat_w, control_r]
        if config.listen_fd is not None:
            pass_fds.append(config.listen_fd)
        try:
            shard.proc = subprocess.Popen(
                self._shard_argv(config),
                pass_fds=tuple(pass_fds),
                env=self._child_env(),
            )
        finally:
            os.close(heartbeat_w)
            os.close(control_r)
        os.set_blocking(heartbeat_r, False)
        os.set_blocking(control_w, False)
        shard.heartbeat_fd = heartbeat_r
        shard.control_fd = control_w
        shard.state = STARTING
        shard.spawned_at = time.monotonic()
        shard.last_beat = shard.spawned_at
        shard.hung = False
        shard.expected_exit = False
        shard.buffer.clear()
        shard.metrics_live = {}
        shard.restart_at = None
        self._selector.register(heartbeat_r, selectors.EVENT_READ, shard)
        event(
            _log, "shard.spawn",
            shard=shard.shard_id, pid=shard.proc.pid, chaos=chaos or None,
        )
        if not self.quiet:
            print(
                f"rat serve: shard {shard.shard_id} spawned "
                f"(pid {shard.proc.pid})",
                flush=True,
            )

    def _close_shard_fds(self, shard: Shard) -> None:
        if shard.heartbeat_fd >= 0:
            with contextlib.suppress(KeyError, ValueError):
                self._selector.unregister(shard.heartbeat_fd)
            with contextlib.suppress(OSError):
                os.close(shard.heartbeat_fd)
            shard.heartbeat_fd = -1
        if shard.control_fd >= 0:
            with contextlib.suppress(OSError):
                os.close(shard.control_fd)
            shard.control_fd = -1

    # ---- control plane -----------------------------------------------------

    def _send(self, shard: Shard, message: dict) -> bool:
        if shard.control_fd < 0:
            return False
        data = json.dumps(message, separators=(",", ":")).encode() + b"\n"
        try:
            os.write(shard.control_fd, data)
            return True
        except (BrokenPipeError, BlockingIOError, OSError):
            return False

    def _broadcast(self, message: dict) -> None:
        for shard in self.active:
            if shard.proc is not None and shard.proc.poll() is None:
                self._send(shard, message)

    def _drain_shard(self, shard: Shard) -> None:
        shard.expected_exit = True
        shard.state = DRAINING
        sent = self._send(shard, {"op": "drain"})
        if not sent and shard.proc is not None:
            # Control pipe already broken: fall back to the signal the
            # shard wires to the same drain path.
            with contextlib.suppress(OSError):
                shard.proc.send_signal(signal.SIGTERM)

    # ---- loop steps --------------------------------------------------------

    def _drain_wake_pipe(self) -> None:
        with contextlib.suppress(OSError):
            while os.read(self._wake_r, 4096):
                pass

    def _run_commands(self) -> None:
        while self._commands:
            command = self._commands.popleft()
            if command == "stop":
                self._begin_stop()
            elif command == "rolling":
                self._begin_rolling()

    def _read_heartbeats(self, shard: Shard) -> None:
        try:
            data = os.read(shard.heartbeat_fd, 65536)
        except BlockingIOError:
            return
        except OSError:
            data = b""
        if not data:
            # EOF: the shard closed its end (exit path); the reaper
            # handles the process itself.
            with contextlib.suppress(KeyError, ValueError):
                self._selector.unregister(shard.heartbeat_fd)
            return
        shard.buffer.extend(data)
        if b"\n" not in data:
            return
        # One split per read (not per line): a burst of queued beats
        # after a stall costs O(bytes), not O(lines * bytes).  Only the
        # trailing partial line survives in the buffer.
        *lines, tail = shard.buffer.split(b"\n")
        shard.buffer[:] = tail
        for line in lines:
            try:
                beat = json.loads(line)
            except ValueError:
                continue  # torn heartbeat line; the next one completes
            if not isinstance(beat, dict):
                continue
            shard.last_beat = time.monotonic()
            snapshot = beat.pop("metrics", None)
            if isinstance(snapshot, dict):
                self._absorb_snapshot(shard, snapshot)
            unknown = set(beat) - _BEAT_KEYS
            if unknown:
                # Drop keys the contract doesn't know: shard-supplied
                # names must never mint supervisor state.  Warn once
                # per key, not once per beat.
                beat = {k: v for k, v in beat.items() if k in _BEAT_KEYS}
                fresh = unknown - self._unknown_stat_keys
                if fresh:
                    self._unknown_stat_keys.update(fresh)
                    event(
                        _log, "heartbeat.unknown_keys",
                        shard=shard.shard_id, keys=sorted(fresh),
                        level=logging.WARNING,
                    )
            shard.stats = beat
            state = beat.get("state")
            if state == "ready" and shard.state == STARTING:
                shard.state = READY
                shard.backoff_s = 0.0
                event(
                    _log, "shard.ready",
                    shard=shard.shard_id, pid=shard.pid,
                )
                if not self.quiet:
                    print(
                        f"rat serve: shard {shard.shard_id} ready "
                        f"(pid {shard.pid})",
                        flush=True,
                    )
            elif state == "draining" and shard.state in (STARTING, READY):
                shard.state = DRAINING

    def _absorb_snapshot(self, shard: Shard, snapshot: dict) -> None:
        """Take a shard's latest metrics snapshot, reset-safe.

        Within one incarnation counters only grow; a counter that went
        *down* means the previous snapshot belonged to a process we
        never saw exit (or a torn/confused shard), so the old snapshot
        is banked into the slot's accumulator first — summed cluster
        counters can then never go backwards.
        """
        live = shard.metrics_live
        if live:
            previous = live.get("c") or {}
            current = snapshot.get("c") or {}
            for name, value in previous.items():
                new = current.get(name)
                if not isinstance(new, (int, float)) or new < value:
                    shard.metrics_acc = merge_snapshots(
                        [shard.metrics_acc, live]
                    )
                    break
        shard.metrics_live = snapshot

    def _fold_incarnation_metrics(self, shard: Shard) -> None:
        """Bank the dead incarnation's snapshot into the slot total."""
        if shard.metrics_live:
            shard.metrics_acc = merge_snapshots(
                [shard.metrics_acc, shard.metrics_live]
            )
            shard.metrics_live = {}

    def _retire_metrics(self, shard: Shard) -> None:
        """Fold a departing slot's history into the cluster base.

        Called when a slot leaves ``active`` for good (drained, stopped
        or benched): its counters/histograms keep counting in the
        aggregate forever, while its per-shard *gauges* — which only
        ever come from the live snapshot — disappear from the
        exposition.
        """
        self._fold_incarnation_metrics(shard)
        if shard.metrics_acc:
            self._metrics_retired = merge_snapshots(
                [self._metrics_retired, shard.metrics_acc]
            )
            shard.metrics_acc = {}

    def _reap_exits(self) -> None:
        for shard in list(self.active):
            if shard.proc is None:
                continue
            returncode = shard.proc.poll()
            if returncode is None:
                continue
            self._close_shard_fds(shard)
            shard.proc = None
            for key in self._done_totals:
                value = shard.stats.get(key)
                if isinstance(value, (int, float)):
                    self._done_totals[key] += value
            shard.stats = {}
            self._fold_incarnation_metrics(shard)
            event(
                _log, "shard.exit",
                shard=shard.shard_id, returncode=returncode,
                expected=shard.expected_exit, hung=shard.hung,
            )
            if shard.expected_exit or self._stopping:
                shard.state = STOPPED
                self.active.remove(shard)
                self._retire_metrics(shard)
                continue
            self._schedule_restart(shard)

    def _schedule_restart(self, shard: Shard) -> None:
        now = time.monotonic()
        shard.restart_times.append(now)
        while (
            shard.restart_times
            and now - shard.restart_times[0] > self.policy.window_s
        ):
            shard.restart_times.popleft()
        if len(shard.restart_times) > self.policy.budget:
            shard.state = BENCHED
            self.active.remove(shard)
            self.benched.append(shard)
            self._retire_metrics(shard)
            self._c_benched.inc()
            event(
                _log, "shard.benched",
                shard=shard.shard_id,
                restarts_in_window=len(shard.restart_times),
                window_s=self.policy.window_s,
            )
            if not self.quiet:
                print(
                    f"rat serve: shard {shard.shard_id} benched after "
                    f"{len(shard.restart_times)} restarts in "
                    f"{self.policy.window_s:g}s (circuit breaker)",
                    flush=True,
                )
            return
        shard.backoff_s = self.policy.next_backoff(shard.backoff_s)
        shard.restart_at = now + shard.backoff_s
        shard.state = STARTING
        self.restarts += 1
        self._c_restarts.inc()
        event(
            _log, "shard.restart",
            shard=shard.shard_id, backoff_s=shard.backoff_s,
            restarts_in_window=len(shard.restart_times),
        )

    def _check_liveness(self) -> None:
        if self._stopping:
            return
        now = time.monotonic()
        for shard in self.active:
            if shard.proc is None or shard.expected_exit:
                continue
            if shard.state == STARTING and shard.restart_at is not None:
                continue  # not respawned yet
            deadline = (
                shard.spawned_at + self.boot_timeout_s
                if shard.state == STARTING
                else shard.last_beat + self.liveness_timeout_s
            )
            if now < deadline:
                continue
            shard.hung = True
            event(
                _log, "shard.hung",
                shard=shard.shard_id, pid=shard.pid,
                silent_s=now - shard.last_beat,
            )
            with contextlib.suppress(OSError):
                shard.proc.kill()

    def _run_restarts(self) -> None:
        if self._stopping:
            return
        now = time.monotonic()
        for shard in self.active:
            if (
                shard.proc is None
                and shard.restart_at is not None
                and now >= shard.restart_at
            ):
                self._spawn(shard)

    # ---- rolling restart ---------------------------------------------------

    def _begin_rolling(self) -> None:
        if self._stopping or self._rolling or self._rolling_step:
            return
        ids = [s.shard_id for s in self.active if s.proc is not None]
        if not ids:
            return
        self._rolling.extend(ids)
        event(_log, "cluster.rolling_restart", shards=ids)
        if not self.quiet:
            print(
                f"rat serve: rolling restart of shards {ids}", flush=True
            )

    def _advance_rolling(self) -> None:
        if self._stopping:
            self._rolling.clear()
            self._rolling_step = None
            return
        step = self._rolling_step
        now = time.monotonic()
        if step is None:
            if not self._rolling:
                return
            old_id = self._rolling.popleft()
            old = next(
                (s for s in self.active if s.shard_id == old_id), None
            )
            if old is None or old.proc is None:
                return  # crashed/benched since enqueue; nothing to recycle
            # Surge: bring the replacement up before draining the old
            # shard, so live capacity never dips below the floor.
            replacement = self._spawn_slot()
            self._rolling_step = {
                "old": old,
                "new": replacement,
                "phase": "wait_ready",
                "deadline": now + self.boot_timeout_s,
            }
            return
        old, new = step["old"], step["new"]
        if step["phase"] == "wait_ready":
            if new.state == READY:
                self._drain_shard(old)
                step["phase"] = "wait_exit"
                step["deadline"] = now + self.drain_timeout_s + 5.0
            elif new not in self.active or now >= step["deadline"]:
                # Replacement failed to come up: keep the old shard,
                # abort the rest of the rolling restart.
                event(
                    _log, "cluster.rolling_aborted",
                    shard=new.shard_id,
                )
                if new in self.active and new.proc is not None:
                    new.expected_exit = True
                    with contextlib.suppress(OSError):
                        new.proc.kill()
                self._rolling.clear()
                self._rolling_step = None
        elif step["phase"] == "wait_exit":
            if old not in self.active:
                self._rolling_step = None  # recycled; next shard
            elif now >= step["deadline"] and old.proc is not None:
                with contextlib.suppress(OSError):
                    old.proc.kill()

    # ---- autoscaling -------------------------------------------------------

    def _advance_autoscale(self) -> None:
        """Spawn/retire shards from smoothed queue-depth heartbeats.

        Disabled unless ``max_shards`` is set.  The signal is the
        cluster's total pending-queue depth per *ready* shard, smoothed
        by a time-aware EWMA (irregular loop ticks weigh by elapsed
        time, not tick count).  Hysteresis comes from the
        ``scale_up_depth > scale_down_depth`` gap plus a cooldown after
        every action; scale-up also waits for any starting shard to
        become ready first, so one load step spawns one shard at a
        time.  Scale-down retires the *newest* idle ready shard through
        the ordinary drain path — in-flight and queued requests finish,
        and the expected exit spends no restart budget.  Benched slots
        count against ``max_shards``: the breaker's verdict stands.
        """
        if self.max_shards is None or self._stopping:
            return
        if self._rolling or self._rolling_step:
            return
        ready = [s for s in self.active if s.state == READY]
        if not ready:
            return
        depth = 0.0
        for shard in ready:
            value = shard.stats.get("queue_depth")
            if isinstance(value, (int, float)):
                depth += value
        per_ready = depth / len(ready)
        now = time.monotonic()
        if self._ewma_at is None:
            self._depth_ewma = per_ready
        else:
            dt = max(now - self._ewma_at, 0.0)
            alpha = 1.0 - math.exp(-dt / self.scale_smoothing_s)
            self._depth_ewma += alpha * (per_ready - self._depth_ewma)
        self._ewma_at = now
        self._g_depth_ewma.set(self._depth_ewma)
        if now - self._last_scale_at < self.scale_cooldown_s:
            return
        slots = len(self.active) + len(self.benched)
        if (
            self._depth_ewma > self.scale_up_depth
            and slots < self.max_shards
            and not any(s.state == STARTING for s in self.active)
        ):
            shard = self._spawn_slot()
            self.scale_ups += 1
            self._c_scale_up.inc()
            self._last_scale_at = now
            event(
                _log, "cluster.scale_up",
                shard=shard.shard_id, depth_ewma=self._depth_ewma,
                ready_shards=len(ready),
            )
            if not self.quiet:
                print(
                    f"rat serve: scale-up -> shard {shard.shard_id} "
                    f"(queue depth {self._depth_ewma:.1f}/ready-shard)",
                    flush=True,
                )
            return
        if (
            self._depth_ewma < self.scale_down_depth
            and len(ready) > self.min_shards
        ):
            idle = [
                s for s in ready
                if not s.stats.get("queue_depth")
                and not s.stats.get("inflight")
            ]
            if not idle:
                return
            victim = max(idle, key=lambda s: s.shard_id)
            self._drain_shard(victim)
            self.scale_downs += 1
            self._c_scale_down.inc()
            self._last_scale_at = now
            event(
                _log, "cluster.scale_down",
                shard=victim.shard_id, depth_ewma=self._depth_ewma,
                ready_shards=len(ready),
            )
            if not self.quiet:
                print(
                    f"rat serve: scale-down -> draining shard "
                    f"{victim.shard_id} (idle, queue depth "
                    f"{self._depth_ewma:.2f}/ready-shard)",
                    flush=True,
                )

    # ---- aggregated metrics endpoint ---------------------------------------

    def cluster_metrics_text(self) -> str:
        """The merged cluster exposition (plus supervisor-own series).

        Counters and histograms are summed over every incarnation that
        ever reported (retired base + per-slot accumulators + live
        snapshots) — monotone across restarts by construction.  Gauges
        come only from live shards, labeled ``shard="N"``; a retired
        shard's gauge series simply stops appearing.
        """
        parts = [self._metrics_retired]
        gauges: dict[str, dict] = {}
        for shard in self.active:
            if shard.metrics_acc:
                parts.append(shard.metrics_acc)
            if shard.metrics_live:
                parts.append(shard.metrics_live)
                live_gauges = shard.metrics_live.get("g")
                if shard.proc is not None and isinstance(live_gauges, dict):
                    gauges[str(shard.shard_id)] = live_gauges
        merged = merge_snapshots(parts)
        # The supervisor's own cluster.* instruments, filtered out of
        # the process registry so a co-resident app (tests, benches)
        # can't collide with the shard-summed series.
        registry = get_metrics()
        own = MetricsRegistry()
        for table in ("_counters", "_gauges", "_histograms"):
            setattr(own, table, {
                name: instrument
                for name, instrument in getattr(registry, table).items()
                if name.startswith("cluster.")
            })
        return render_prometheus(own) + render_cluster_metrics(
            merged, gauges
        )

    def _accept_scrapes(self) -> None:
        while True:
            try:
                conn, _ = self._metrics_sock.accept()
            except (BlockingIOError, OSError):
                return
            conn.setblocking(False)
            try:
                self._selector.register(
                    conn, selectors.EVENT_READ, _Scrape(conn)
                )
            except (KeyError, ValueError):  # pragma: no cover
                conn.close()

    def _read_scrape(self, scrape: _Scrape) -> None:
        try:
            data = scrape.sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            data = b""
        if data:
            scrape.buffer.extend(data)
            if (
                b"\r\n\r\n" not in scrape.buffer
                and len(scrape.buffer) < 8192
            ):
                return  # head incomplete; wait for more
        self._finish_scrape(scrape)

    def _finish_scrape(self, scrape: _Scrape) -> None:
        with contextlib.suppress(KeyError, ValueError):
            self._selector.unregister(scrape.sock)
        try:
            head = bytes(scrape.buffer).split(b"\r\n", 1)[0]
            parts = head.decode("latin-1", "replace").split()
            method = parts[0] if parts else ""
            path = (parts[1] if len(parts) > 1 else "").partition("?")[0]
            ctype = "text/plain; charset=utf-8"
            if method != "GET":
                status, body = "405 Method Not Allowed", b"GET only\n"
            elif path == "/metrics":
                status = "200 OK"
                ctype = "text/plain; version=0.0.4; charset=utf-8"
                body = self.cluster_metrics_text().encode()
            elif path == "/status":
                status = "200 OK"
                ctype = "application/json"
                body = json.dumps(self.status()).encode()
            else:
                status, body = "404 Not Found", b"not found\n"
            response = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode() + body
            # A scrape response is small and the peer is a scraper on
            # localhost: a short blocking send keeps the loop simple.
            scrape.sock.setblocking(True)
            scrape.sock.settimeout(2.0)
            scrape.sock.sendall(response)
        except OSError:
            pass
        finally:
            with contextlib.suppress(OSError):
                scrape.sock.close()

    # ---- cluster drain -----------------------------------------------------

    def _begin_stop(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        self._stop_deadline = (
            time.monotonic() + self.drain_timeout_s + 5.0
        )
        event(_log, "cluster.draining", shards=len(self.active))
        for shard in list(self.active):
            if shard.proc is None:
                shard.state = STOPPED
                self.active.remove(shard)
                self._retire_metrics(shard)
                continue
            self._drain_shard(shard)

    def _advance_stop(self) -> None:
        if not self._stopping:
            return
        if not self.active:
            self._finished = True
            return
        if (
            self._stop_deadline is not None
            and time.monotonic() >= self._stop_deadline
        ):
            for shard in self.active:
                if shard.proc is not None:
                    with contextlib.suppress(OSError):
                        shard.proc.kill()
            self._stop_deadline = time.monotonic() + 5.0

    # ---- cluster state / status --------------------------------------------

    def _refresh_cluster_state(self) -> None:
        ready_count = sum(1 for s in self.active if s.state == READY)
        live_count = sum(1 for s in self.active if s.proc is not None)
        cluster_ready = (
            not self._stopping and ready_count >= self.min_shards
        )
        self._g_live.set(live_count)
        self._g_ready.set(ready_count)
        self._g_benched.set(len(self.benched))
        totals = dict(self._done_totals)
        for shard in self.active:
            for key in totals:
                value = shard.stats.get(key)
                if isinstance(value, (int, float)):
                    totals[key] += value
        self._totals = totals
        metrics = get_metrics()
        for key, value in totals.items():
            metrics.gauge(f"cluster.{key}").set(value)
        if (
            cluster_ready == self._cluster_ready
            and ready_count == self._ready_count
        ):
            return
        previous = self._cluster_ready
        transition = cluster_ready != previous
        self._cluster_ready = cluster_ready
        self._ready_count = ready_count
        self._broadcast({
            "op": "cluster",
            "ready": cluster_ready,
            "live": live_count,
            "shards": self.n_shards,
        })
        # A "degraded" event at boot (before any shard is ready) is
        # noise; announce only real transitions and the first ready.
        if transition and not self._stopping and (
            cluster_ready or previous is not None
        ):
            event(
                _log,
                "cluster.ready" if cluster_ready else "cluster.degraded",
                ready_shards=ready_count,
                live_shards=live_count,
                min_shards=self.min_shards,
            )

    def _publish_status(self) -> None:
        self._status = {
            "running": True,
            "finished": self._finished,
            "stopping": self._stopping,
            "host": self.host,
            "port": self.port,
            "shards": [
                {
                    "id": s.shard_id,
                    "state": s.state,
                    "pid": s.pid,
                    "stats": s.stats,
                }
                for s in self.active
            ],
            "benched": [s.shard_id for s in self.benched],
            "ready_shards": self._ready_count,
            "cluster_ready": bool(self._cluster_ready),
            "restarts": self.restarts,
            "rolling": bool(self._rolling or self._rolling_step),
            "requests": self._totals["requests"],
            "metrics_port": self.metrics_port,
            "max_shards": self.max_shards,
            "queue_depth_ewma": self._depth_ewma,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
        }

    def _cleanup(self) -> None:
        for shard in [*self.active, *self.benched]:
            if shard.proc is not None:
                with contextlib.suppress(OSError):
                    shard.proc.kill()
                with contextlib.suppress(OSError):
                    shard.proc.wait(timeout=5.0)
                shard.proc = None
            self._close_shard_fds(shard)
        self.active.clear()
        with contextlib.suppress(RuntimeError, KeyError):
            for key in list(self._selector.get_map().values()):
                if isinstance(key.data, _Scrape):
                    with contextlib.suppress(OSError):
                        key.data.sock.close()
        if self._metrics_sock is not None:
            with contextlib.suppress(KeyError, ValueError):
                self._selector.unregister(self._metrics_sock)
            self._metrics_sock.close()
            self._metrics_sock = None
        with contextlib.suppress(KeyError, ValueError):
            self._selector.unregister(self._wake_r)
        self._selector.close()
        for fd in (self._wake_r, self._wake_w):
            with contextlib.suppress(OSError):
                os.close(fd)
        if self._holder is not None:
            self._holder.close()
            self._holder = None
        if self._listen_sock is not None:
            self._listen_sock.close()
            self._listen_sock = None
        self._finished = True
        self._publish_status()
        event(_log, "cluster.drained", restarts=self.restarts)


def run_cluster(
    *,
    shards: int,
    min_shards: int = 1,
    host: str = "127.0.0.1",
    port: int = 8321,
    policy: RestartPolicy | None = None,
    drain_timeout_s: float = 10.0,
    quiet: bool = False,
    access_log: str | None = None,
    metrics_port: int | None = None,
    max_shards: int | None = None,
    scale_up_depth: float = 8.0,
    scale_down_depth: float = 1.0,
    scale_cooldown_s: float = 5.0,
    **serve_kwargs,
) -> int:
    """The ``rat serve --shards N`` entry point (blocking, returns 0).

    SIGTERM and SIGINT both begin a graceful cluster drain; SIGHUP
    begins a rolling restart.  The startup banner mirrors the
    single-process one (``rat serve: cluster listening on http://H:P``)
    so scripts using ``--port 0`` can parse the bound port either way;
    with ``--metrics-port`` a second parseable banner names the
    aggregated-metrics listener.
    """
    supervisor = Supervisor(
        shards=shards,
        min_shards=min_shards,
        host=host,
        port=port,
        policy=policy,
        drain_timeout_s=drain_timeout_s,
        quiet=quiet,
        access_log=access_log,
        metrics_port=metrics_port,
        max_shards=max_shards,
        scale_up_depth=scale_up_depth,
        scale_down_depth=scale_down_depth,
        scale_cooldown_s=scale_cooldown_s,
        **serve_kwargs,
    )
    if access_log is not None:
        from ..obs.log import configure_logging

        configure_logging(access_log)
    supervisor.start()
    previous = {}
    for signame, action in (
        (signal.SIGTERM, supervisor.stop),
        (signal.SIGINT, supervisor.stop),
        (signal.SIGHUP, supervisor.rolling_restart),
    ):
        try:
            previous[signame] = signal.signal(
                signame, lambda _s, _f, action=action: action()
            )
        except (ValueError, OSError, AttributeError):
            pass  # non-main thread or platform without the signal
    if not quiet:
        bounds = (
            f"shards={shards}, min_shards={min_shards}"
            + (f", max_shards={max_shards}" if max_shards else "")
        )
        print(
            f"rat serve: cluster listening on "
            f"http://{supervisor.host}:{supervisor.port} "
            f"({bounds})",
            flush=True,
        )
        if supervisor.metrics_port is not None:
            print(
                f"rat serve: cluster metrics on "
                f"http://{supervisor.host}:{supervisor.metrics_port}"
                f"/metrics",
                flush=True,
            )
    try:
        supervisor.run()
    finally:
        for signame, handler in previous.items():
            with contextlib.suppress(ValueError, OSError):
                signal.signal(signame, handler)
    if not quiet:
        status = supervisor.status()
        print(
            f"rat serve: cluster drained cleanly after "
            f"{status.get('requests', 0)} requests "
            f"({supervisor.restarts} restarts, "
            f"{len(supervisor.benched)} benched)",
            flush=True,
        )
    return 0
