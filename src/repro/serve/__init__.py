"""Network serving: RAT predictions behind a micro-batching HTTP API.

The paper frames RAT as an interactive pre-design test consulted
repeatedly across candidate designs; modern users of such models are
optimizer loops issuing thousands of small queries over a network.
This subsystem serves that traffic shape on the stdlib only:

``protocol``
    Socket-free HTTP/1.1 parsing/formatting over ``bytes``.
``batcher``
    :class:`MicroBatcher` — coalesces concurrent single predictions
    into struct-of-arrays batches (``max_batch_size``/``max_wait_us``
    window) so callers ride PR 2's vectorized kernels bitwise-equal to
    scalar ``predict()``, with PR 3's row-level quarantine isolating
    invalid worksheets and bounded-queue admission control (429 +
    ``Retry-After``, per-request deadlines).
``app``
    :class:`RATApp` — the transport-independent route table
    (``/v1/predict``, ``/v1/batch``, ``/v1/explore``, ``/healthz``,
    ``/metrics``).
``server``
    :class:`RATServer` / :func:`serve` — the asyncio TCP transport with
    keep-alive connections and graceful SIGTERM drain.
``supervisor`` / ``cluster``
    :class:`Supervisor` / :func:`run_cluster` — the self-healing
    multi-process cluster mode (``rat serve --shards N``): N shard
    processes share the port via ``SO_REUSEPORT`` (or an inherited
    parent-bound fd), each heartbeating to a parent supervisor that
    restarts crashes with backoff, benches crash-loopers behind a
    circuit breaker, SIGKILLs hung shards, rolls restarts on SIGHUP
    without dropping below the readiness floor, and drains the whole
    cluster on SIGTERM/SIGINT.

The ``rat serve`` CLI subcommand wraps :func:`serve` (or
:func:`run_cluster` with ``--shards``);
``benchmarks/bench_serve.py`` load-tests the stack in-process and
records the shard scale curve.
"""

from .app import RATApp
from .batcher import (
    MicroBatcher,
    resolve_modes,
    scalar_diagnostic,
    worksheet_row,
)
from .protocol import (
    MAX_HEAD_BYTES,
    ProtocolError,
    Request,
    Response,
    error_body,
    format_response,
    json_response,
    parse_head,
)
from .cluster import ShardConfig, create_listen_socket, reuse_port_supported
from .server import RATServer, serve
from .supervisor import RestartPolicy, Supervisor, run_cluster

__all__ = [
    "MAX_HEAD_BYTES",
    "MicroBatcher",
    "ProtocolError",
    "RATApp",
    "RATServer",
    "Request",
    "Response",
    "RestartPolicy",
    "ShardConfig",
    "Supervisor",
    "create_listen_socket",
    "error_body",
    "format_response",
    "json_response",
    "parse_head",
    "resolve_modes",
    "reuse_port_supported",
    "run_cluster",
    "scalar_diagnostic",
    "serve",
    "worksheet_row",
]
