"""Minimal HTTP/1.1 wire helpers for the prediction service.

The serving layer is stdlib-only, so this module implements the small
slice of HTTP the service needs — request-head parsing and response
formatting — as pure functions over ``bytes``, independent of sockets.
That keeps the parser unit-testable without an event loop and lets the
benchmark drive the application layer directly.

Scope (deliberate): ``Content-Length`` bodies only (no chunked
transfer-encoding), no multipart, no compression.  Requests are parsed
permissively where harmless (header whitespace, case) and rejected with
:class:`ProtocolError` where ambiguity could corrupt framing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

from ..errors import ServeError

__all__ = [
    "MAX_HEAD_BYTES",
    "ProtocolError",
    "Request",
    "Response",
    "parse_head",
    "format_response",
    "json_response",
    "error_body",
]

#: Upper bound on the request line + headers block; a head that exceeds
#: this is rejected with 431 before any body is read.
MAX_HEAD_BYTES = 32768

#: Reason phrases for the status codes the service emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(ServeError):
    """The request violates HTTP framing; carries the response status."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = int(status)


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request (head + body)."""

    method: str
    path: str
    headers: Mapping[str, str]
    body: bytes = b""
    version: str = "HTTP/1.1"
    query: str = ""

    def json(self) -> object:
        """Decode the body as JSON (raises ProtocolError on bad input)."""
        if not self.body:
            raise ProtocolError("request body must be a JSON document")
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"malformed JSON body: {exc}") from exc

    @property
    def keep_alive(self) -> bool:
        """Whether the client expects the connection to stay open."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


@dataclass(frozen=True)
class Response:
    """One HTTP response the application hands back to the transport."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: tuple[tuple[str, str], ...] = field(default=())


def parse_head(head: bytes) -> tuple[str, str, str, dict[str, str], str]:
    """Parse a request head (everything through ``\\r\\n\\r\\n``).

    Returns ``(method, path, version, headers, query)`` with header
    names lower-cased.  The query string is split off the path and
    returned raw (without the ``?``); ``/metrics?format=text`` is the
    only endpoint that currently reads it.
    """
    lines = head.split(b"\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line {lines[0][:80]!r}")
    method_b, target, version_b = parts
    try:
        method = method_b.decode("ascii")
        path, _, query = target.decode("ascii").partition("?")
        version = version_b.decode("ascii")
    except UnicodeDecodeError as exc:
        raise ProtocolError("request line is not ASCII") from exc
    if not version.startswith("HTTP/"):
        raise ProtocolError(f"unsupported protocol {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(b":")
        if not separator:
            raise ProtocolError(f"malformed header line {line[:80]!r}")
        try:
            headers[name.strip().decode("ascii").lower()] = (
                value.strip().decode("latin-1")
            )
        except UnicodeDecodeError as exc:
            raise ProtocolError("header name is not ASCII") from exc
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError("chunked transfer-encoding not supported", 501)
    return method, path, version, headers, query


def body_length(headers: Mapping[str, str], max_body_bytes: int) -> int:
    """Validate and return the declared body length.

    A missing ``Content-Length`` means an empty body; a malformed one is
    a 400, an oversized one a 413 — *before* the body is read, so a
    client cannot make the server buffer an arbitrarily large payload.
    """
    raw = headers.get("content-length")
    if raw is None:
        return 0
    try:
        n = int(raw)
    except ValueError:
        raise ProtocolError(f"malformed Content-Length {raw!r}") from None
    if n < 0:
        raise ProtocolError(f"negative Content-Length {n}")
    if n > max_body_bytes:
        raise ProtocolError(
            f"request body of {n} bytes exceeds the {max_body_bytes}-byte "
            "limit",
            413,
        )
    return n


def format_response(response: Response, *, keep_alive: bool = True) -> bytes:
    """Serialise a :class:`Response` to wire bytes."""
    reason = _REASONS.get(response.status, "Unknown")
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in response.headers
    )
    head = (
        f"HTTP/1.1 {response.status} {reason}\r\n"
        f"Content-Type: {response.content_type}\r\n"
        f"Content-Length: {len(response.body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"{extra}\r\n"
    )
    return head.encode("latin-1") + response.body


def json_response(
    payload: object,
    status: int = 200,
    headers: tuple[tuple[str, str], ...] = (),
) -> Response:
    """A JSON-bodied :class:`Response` for a python payload."""
    return Response(
        status=status,
        body=json.dumps(payload, separators=(",", ":")).encode("utf-8"),
        headers=headers,
    )


def error_body(message: str, status: int) -> Response:
    """The service's uniform JSON error envelope."""
    return json_response({"error": message, "status": status}, status)
