"""The prediction service's application layer: routes over JSON bodies.

:class:`RATApp` is transport-independent — it maps parsed
:class:`~repro.serve.protocol.Request` objects to
:class:`~repro.serve.protocol.Response` objects, with no socket code.
The asyncio server (:mod:`repro.serve.server`) feeds it from the wire;
tests and the benchmark's in-process load generator call
:meth:`RATApp.handle` directly.

Endpoints:

``POST /v1/predict``
    One worksheet -> the full Equations (1)-(11) result.  Requests are
    coalesced through the :class:`~repro.serve.batcher.MicroBatcher`, so
    concurrent callers share struct-of-arrays batch evaluations while
    each still receives a result bitwise-equal to scalar ``predict()``.
``POST /v1/batch``
    An array of worksheets evaluated as one batch via
    :func:`repro.core.batch.batch_predict`, with row-level quarantine:
    invalid rows come back as per-row errors, valid rows still predict.
``POST /v1/explore``
    A bounded design-space sweep via :func:`repro.explore.explore` over
    a registered case study or an inline worksheet.
``GET /healthz``
    Liveness plus queue/served counters; reports ``draining`` during
    graceful shutdown.  Kept as a back-compat alias for the split
    probes below (always 200 while the process is up).
``GET /healthz/live``
    Pure liveness: 200 whenever the process can answer at all — even
    while draining.  A restart-deciding probe (kubelet, supervisor)
    should watch this, never readiness.
``GET /healthz/ready``
    Load-acceptance: 200 only when the process is not draining *and*
    (in cluster mode) the supervisor reports the cluster at or above
    its ``min_shards`` readiness floor; 503 otherwise, so an edge LB
    can shed load on status code alone, without JSON parsing.
``GET /metrics``
    The process-global :mod:`repro.obs` metrics registry in Prometheus
    text exposition format (``?format=text`` serves the legacy
    human-readable table).  In cluster mode every sample carries a
    ``shard`` label.

Failure mapping is uniform: :class:`AdmissionError` -> 429 with a
``Retry-After`` header, :class:`DeadlineError` -> 504,
:class:`LimitError` / oversized payloads -> 413, validation errors ->
400, draining -> 503, anything unexpected -> 500 (and a
``serve.errors`` counter increment).
"""

from __future__ import annotations

import asyncio
import logging
import math
import time
from typing import Mapping

import numpy as np

from ..apps.registry import get_case_study
from ..core.batch import BatchInput, batch_predict, row_violations
from ..core.buffering import BufferingMode
from ..core.params import RATInput
from ..errors import (
    AdmissionError,
    DeadlineError,
    LimitError,
    ParameterError,
    RATError,
    ServeError,
)
from ..obs import get_metrics, get_tracer, metrics_summary, render_prometheus
from ..obs.log import event, get_logger
from ..obs.propagation import (
    activate,
    current_context,
    deactivate,
    format_traceparent,
    new_context,
    parse_traceparent,
)
from .batcher import (
    MicroBatcher,
    resolve_modes,
    scalar_diagnostic,
    worksheet_row,
)
from .protocol import ProtocolError, Request, Response, error_body, json_response

__all__ = ["RATApp"]

_log = get_logger("serve")

#: Status codes whose counters are pre-registered at app construction so
#: a ``/metrics`` scrape sees every ``serve.status_*`` series from the
#: first request — no series appearing mid-flight between scrapes.
_STATUS_CODES = (400, 404, 405, 411, 413, 429, 431, 500, 501, 503, 504)

#: Fields copied from a batch prediction row into JSON responses.
_RESULT_FIELDS = (
    "t_input",
    "t_output",
    "t_comm",
    "t_comp",
    "t_rc",
    "speedup",
    "util_comp",
    "util_comm",
)

#: Default cap on prediction rows returned by ``/v1/explore``.
_EXPLORE_TOP_DEFAULT = 100


def _http_status(exc: RATError) -> tuple[int, tuple[tuple[str, str], ...]]:
    """Map a library exception to (status, extra headers)."""
    if isinstance(exc, ProtocolError):
        return exc.status, ()
    if isinstance(exc, AdmissionError):
        retry_after = max(math.ceil(exc.retry_after_s), 1)
        return 429, (("Retry-After", str(retry_after)),)
    if isinstance(exc, DeadlineError):
        return 504, ()
    if isinstance(exc, LimitError):
        return 413, ()
    if isinstance(exc, ServeError):
        return 503, ()
    return 400, ()


def _require_object(payload: object, what: str) -> Mapping[str, object]:
    # type-is-dict covers every JSON-decoded object without the cost of
    # the abc instance check; the isinstance fallback keeps Mapping
    # compatibility for programmatic callers.
    if type(payload) is dict or isinstance(payload, Mapping):
        return payload
    raise ParameterError(f"{what} must be a JSON object")


class RATApp:
    """Route table + micro-batcher behind the RAT prediction service."""

    def __init__(
        self,
        *,
        max_batch_size: int = 64,
        max_wait_us: float = 200.0,
        max_pending: int = 1024,
        workers: int = 1,
        max_body_bytes: int = 1 << 20,
        max_batch_rows: int = 4096,
        max_explore_points: int = 200_000,
        default_deadline_s: float | None = None,
        shard_id: int | None = None,
    ) -> None:
        self.batcher = MicroBatcher(
            max_batch_size=max_batch_size,
            max_wait_us=max_wait_us,
            max_pending=max_pending,
            workers=workers,
        )
        self.max_body_bytes = int(max_body_bytes)
        self.max_batch_rows = int(max_batch_rows)
        self.max_explore_points = int(max_explore_points)
        self.default_deadline_s = default_deadline_s
        self.shard_id = shard_id
        #: Cluster view pushed by the shard supervisor over the control
        #: pipe (``{"ready": bool, "live": int, "shards": int}``); None
        #: in single-process mode, where readiness is purely local.
        self.cluster_state: dict[str, object] | None = None
        self.draining = False
        self.inflight = 0
        self.requests = 0
        metrics = get_metrics()
        self._requests_total = metrics.counter("serve.requests")
        self._request_seconds = metrics.histogram("serve.request_seconds")
        self._status_counters = {
            code: metrics.counter(f"serve.status_{code}")
            for code in _STATUS_CODES
        }

    # ---- lifecycle ---------------------------------------------------------

    async def startup(self) -> None:
        """Start the micro-batcher; requires a running event loop."""
        self.draining = False
        self.batcher.start()

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting work and (by default) finish what is queued."""
        self.draining = True
        await self.batcher.close(drain=drain)

    async def wait_idle(self, timeout_s: float = 10.0) -> bool:
        """Wait for in-flight requests to finish; True if fully idle."""
        deadline = time.perf_counter() + timeout_s
        while self.inflight > 0 or self.batcher.depth > 0:
            if time.perf_counter() >= deadline:
                return False
            await asyncio.sleep(0.005)
        return True

    # ---- dispatch ----------------------------------------------------------

    async def handle(self, request: Request) -> Response:
        """Serve one request; never raises (errors become responses).

        Trace plumbing: an upstream ``traceparent`` header (if valid)
        seeds the request's ambient :class:`TraceContext`; otherwise —
        when the tracer or the structured log has a consumer — a fresh
        trace starts here.  The ``serve.request`` span adopts that
        context — the upstream span id becomes its ``remote_parent`` —
        and the response carries a ``traceparent`` naming the deepest
        identity this server established, so callers can stitch the
        server-side tree under their own spans.  With no upstream header
        and no telemetry consumer the identity machinery is skipped
        entirely: minting, activating, and formatting ids costs ~3µs per
        request, which is measurable at micro-batched throughput.
        """
        self._requests_total.inc()
        self.requests += 1
        self.inflight += 1
        ctx = parse_traceparent(request.headers.get("traceparent"))
        if ctx is None and (
            get_tracer().enabled or _log.isEnabledFor(logging.INFO)
        ):
            ctx = new_context()
        if ctx is not None:
            token = activate(ctx)
            trace_header = format_traceparent(ctx)
        else:
            token = None
            trace_header = ""
        started = time.perf_counter()
        try:
            try:
                with get_tracer().span(
                    "serve.request",
                    {"method": request.method, "path": request.path},
                    "serve",
                ):
                    inner = current_context()
                    if inner is not None:
                        # Narrowed to the serve.request span when the
                        # tracer records; the raw request context else.
                        trace_header = format_traceparent(inner)
                    response = await self._route(request)
            except RATError as exc:
                status, headers = _http_status(exc)
                response = error_body(str(exc), status)
                response = Response(
                    status=response.status,
                    body=response.body,
                    headers=headers,
                )
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # defensive: a bug must not kill the loop
                get_metrics().counter("serve.errors").inc()
                response = error_body(f"internal error: {exc}", 500)
            if response.status >= 400:
                counter = self._status_counters.get(response.status)
                if counter is None:
                    counter = get_metrics().counter(
                        f"serve.status_{response.status}"
                    )
                counter.inc()
            if _log.isEnabledFor(logging.INFO):
                event(
                    _log,
                    "http.access",
                    method=request.method,
                    path=request.path,
                    status=response.status,
                    duration_ms=(time.perf_counter() - started) * 1e3,
                    bytes=len(response.body),
                    queue_depth=self.batcher.depth,
                )
        finally:
            self.inflight -= 1
            self._request_seconds.observe(time.perf_counter() - started)
            if token is not None:
                deactivate(token)
        if not trace_header:
            return response
        return Response(
            status=response.status,
            body=response.body,
            content_type=response.content_type,
            headers=response.headers + (("traceparent", trace_header),),
        )

    async def _route(self, request: Request) -> Response:
        path = request.path
        if path == "/healthz":
            return self._healthz(request)
        if path == "/healthz/live":
            return self._live(request)
        if path == "/healthz/ready":
            return self._ready(request)
        if path == "/metrics":
            return self._metrics(request)
        if self.draining:
            raise ServeError("service is draining")
        if path == "/v1/predict":
            self._require_post(request)
            return await self._predict(request)
        if path == "/v1/batch":
            self._require_post(request)
            return await self._batch(request)
        if path == "/v1/explore":
            self._require_post(request)
            return await self._explore(request)
        raise ProtocolError(f"no route for {path!r}", 404)

    @staticmethod
    def _require_post(request: Request) -> None:
        if request.method != "POST":
            raise ProtocolError(
                f"{request.path} requires POST, got {request.method}", 405
            )

    # ---- endpoints ---------------------------------------------------------

    def readiness(self) -> tuple[bool, str]:
        """(ready, reason): whether this process should accept load.

        Not ready while draining, and — in cluster mode — while the
        supervisor reports the cluster below its ``min_shards``
        readiness floor (a shard that is itself healthy still sheds
        load then, so the edge LB backs off before the queue does).
        """
        if self.draining:
            return False, "draining"
        state = self.cluster_state
        if state is not None and not state.get("ready", True):
            return False, "cluster below min-shards readiness floor"
        return True, "ok"

    def _healthz(self, request: Request) -> Response:
        if request.method != "GET":
            raise ProtocolError("/healthz requires GET", 405)
        ready, _ = self.readiness()
        payload: dict[str, object] = {
            "status": "draining" if self.draining else "ok",
            "ready": ready,
            "queue_depth": self.batcher.depth,
            "inflight": self.inflight,
            "requests": self.requests,
            "batches": self.batcher.batches,
            "predictions_served": self.batcher.served,
            "batch_seconds_ewma": self.batcher.batch_seconds_ewma,
        }
        if self.shard_id is not None:
            payload["shard"] = self.shard_id
        return json_response(payload)

    def _live(self, request: Request) -> Response:
        if request.method != "GET":
            raise ProtocolError("/healthz/live requires GET", 405)
        payload: dict[str, object] = {"live": True}
        if self.shard_id is not None:
            payload["shard"] = self.shard_id
        return json_response(payload)

    def _ready(self, request: Request) -> Response:
        if request.method != "GET":
            raise ProtocolError("/healthz/ready requires GET", 405)
        ready, reason = self.readiness()
        payload: dict[str, object] = {"ready": ready, "reason": reason}
        if self.shard_id is not None:
            payload["shard"] = self.shard_id
        return json_response(payload, status=200 if ready else 503)

    def _metrics(self, request: Request) -> Response:
        if request.method != "GET":
            raise ProtocolError("/metrics requires GET", 405)
        params = dict(
            part.partition("=")[::2]
            for part in request.query.split("&")
            if part
        )
        if params.get("format") == "text":
            # The pre-Prometheus human-readable table, kept reachable.
            return Response(
                body=metrics_summary(get_metrics()).encode("utf-8"),
                content_type="text/plain; charset=utf-8",
            )
        labels = (
            {"shard": str(self.shard_id)}
            if self.shard_id is not None
            else None
        )
        return Response(
            body=render_prometheus(get_metrics(), labels=labels).encode(
                "utf-8"
            ),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def _predict(self, request: Request) -> Response:
        body = _require_object(request.json(), "request body")
        if "worksheet" in body:
            worksheet = _require_object(body["worksheet"], "'worksheet'")
        else:
            # Bare Table-1 worksheets are accepted directly, so
            # ``curl -d @worksheet.json`` works without an envelope.
            worksheet = body
        modes = resolve_modes(str(body.get("mode", "both")))
        deadline_s = self._deadline_s(body)
        record, batch_size = await self.batcher.submit(
            worksheet, modes, deadline_s=deadline_s
        )
        return json_response({
            "name": str(worksheet.get("name", "")),
            "predictions": record,
            "batch_size": batch_size,
        })

    async def _batch(self, request: Request) -> Response:
        body = _require_object(request.json(), "request body")
        worksheets = body.get("worksheets")
        if not isinstance(worksheets, list) or not worksheets:
            raise ParameterError(
                "request body must carry a non-empty 'worksheets' array"
            )
        if len(worksheets) > self.max_batch_rows:
            raise LimitError(
                f"batch of {len(worksheets)} rows exceeds the "
                f"{self.max_batch_rows}-row limit"
            )
        modes = resolve_modes(str(body.get("mode", "both")))
        results: list[dict[str, object] | None] = [None] * len(worksheets)
        rows: list[tuple[float, ...]] = []
        row_owner: list[int] = []
        for i, item in enumerate(worksheets):
            try:
                rows.append(worksheet_row(_require_object(item, f"row {i}")))
                row_owner.append(i)
            except ParameterError as exc:
                results[i] = {"ok": False, "error": str(exc)}
        evaluated = 0
        if rows:
            evaluated = await asyncio.to_thread(
                self._evaluate_rows, worksheets, results, rows, row_owner,
                modes,
            )
        return json_response({
            "rows": len(worksheets),
            "evaluated": evaluated,
            "failed": len(worksheets) - evaluated,
            "results": results,
        })

    def _evaluate_rows(
        self,
        worksheets: list[object],
        results: list[dict[str, object] | None],
        rows: list[tuple[float, ...]],
        row_owner: list[int],
        modes: tuple[BufferingMode, ...],
    ) -> int:
        """Batch-evaluate staged rows, quarantining invalid ones."""
        matrix = np.asarray(rows, dtype=np.float64)
        staged = BatchInput(*matrix.T, check=False)
        bad = {v.row: v for v in row_violations(staged)}
        for local, violation in bad.items():
            owner = row_owner[local]
            results[owner] = {
                "ok": False,
                "error": scalar_diagnostic(
                    worksheets[owner], violation.message
                ),
            }
        keep = [i for i in range(len(rows)) if i not in bad]
        if not keep:
            return 0
        if bad:
            staged = staged.take(np.asarray(keep, dtype=np.intp), check=True)
        predictions = {
            mode: batch_predict(staged, mode) for mode in modes
        }
        get_metrics().counter("serve.predictions").inc(len(keep))
        if bad:
            get_metrics().counter("serve.quarantined").inc(len(bad))
        for out_i, local in enumerate(keep):
            record: dict[str, dict[str, float]] = {}
            for mode in modes:
                prediction = predictions[mode]
                record[mode.value] = {
                    name: float(getattr(prediction, name)[out_i])
                    for name in _RESULT_FIELDS
                }
            results[row_owner[local]] = {"ok": True, "predictions": record}
        return len(keep)

    async def _explore(self, request: Request) -> Response:
        from ..explore import DesignSpace, explore

        body = _require_object(request.json(), "request body")
        if "study" in body:
            base = get_case_study(str(body["study"])).rat
        elif "worksheet" in body:
            base = RATInput.from_dict(
                _require_object(body["worksheet"], "'worksheet'")
            )
        else:
            raise ParameterError(
                "request body must name a 'study' or carry a 'worksheet'"
            )
        axes_raw = _require_object(body.get("axes", {}), "'axes'")
        axes = {
            str(name): _axis_values(str(name), spec)
            for name, spec in axes_raw.items()
        }
        points = math.prod(len(values) for values in axes.values())
        if points > self.max_explore_points:
            raise LimitError(
                f"sweep of {points} points exceeds the "
                f"{self.max_explore_points}-point limit"
            )
        mode = _buffering_mode(str(body.get("mode", "single")))
        on_error = str(body.get("on_error", "fail"))
        top = int(body.get("top", _EXPLORE_TOP_DEFAULT))
        space = DesignSpace.grid(base, **axes)
        result = await asyncio.to_thread(
            explore, space, mode, on_error=on_error
        )
        records = result.as_records()
        order = sorted(
            (
                i for i in range(len(records))
                # NaN-filled quarantined rows sort unpredictably; report
                # them through ``failures`` instead.
                if records[i]["speedup"] == records[i]["speedup"]
            ),
            key=lambda i: -records[i]["speedup"],
        )
        if top > 0:
            order = order[:top]
        return json_response({
            "name": base.name,
            "mode": mode.value,
            "axes": axes,
            "points": len(result),
            "elapsed_s": result.elapsed_s,
            "points_per_sec": result.points_per_sec,
            "failed_points": result.n_failed,
            "failures": [f.describe() for f in result.failures]
            + [f.describe() for f in result.chunk_failures],
            "predictions": [records[i] for i in order],
        })

    # ---- helpers -----------------------------------------------------------

    def _deadline_s(self, body: Mapping[str, object]) -> float | None:
        raw = body.get("deadline_ms")
        if raw is None:
            return self.default_deadline_s
        try:
            deadline_s = float(raw) * 1e-3
        except (TypeError, ValueError) as exc:
            raise ParameterError(f"non-numeric deadline_ms: {raw!r}") from exc
        if deadline_s <= 0:
            raise ParameterError(f"deadline_ms must be > 0, got {raw!r}")
        return deadline_s


def _buffering_mode(value: str) -> BufferingMode:
    try:
        return BufferingMode(value)
    except ValueError:
        raise ParameterError(
            f"mode must be one of ['double', 'single'], got {value!r}"
        ) from None


def _axis_values(name: str, spec: object) -> list[float]:
    """Decode one axis: an explicit list or a lo/hi/count range object."""
    if isinstance(spec, list):
        if not spec:
            raise ParameterError(f"axis {name!r} must not be empty")
        try:
            return [float(v) for v in spec]
        except (TypeError, ValueError) as exc:
            raise ParameterError(
                f"axis {name!r} has a non-numeric value"
            ) from exc
    if isinstance(spec, Mapping):
        try:
            low = float(spec["lo"])
            high = float(spec["hi"])
            count = int(spec["count"])
        except KeyError as exc:
            raise ParameterError(
                f"axis {name!r} range needs 'lo', 'hi', and 'count'"
            ) from exc
        except (TypeError, ValueError) as exc:
            raise ParameterError(
                f"axis {name!r} has a non-numeric bound"
            ) from exc
        if count < 1:
            raise ParameterError(f"axis {name!r} count must be >= 1")
        if count == 1:
            return [low]
        step = (high - low) / (count - 1)
        return [low + step * i for i in range(count)]
    raise ParameterError(
        f"axis {name!r} must be a value list or a lo/hi/count object"
    )
