"""Shard runtime for the multi-process prediction cluster.

One *shard* is a child process running the complete single-process
service — its own :class:`~repro.serve.app.RATApp`, micro-batcher and
compiled :class:`~repro.core.plan.PredictionPlan` — sharing the
cluster's TCP port.  Two sharing strategies:

``SO_REUSEPORT`` (preferred)
    Every shard binds its own listening socket with ``SO_REUSEPORT``;
    the kernel load-balances new connections across live listeners, and
    a dead shard's listener silently drops out of the group.  The
    supervisor holds a bound (non-listening) placeholder socket so
    ``--port 0`` resolves to one concrete port before shards bind.

Parent-bound fd (fallback)
    On platforms without ``SO_REUSEPORT`` the supervisor binds and
    listens once, and every shard accepts from the inherited fd
    (classic pre-fork).

The supervisor <-> shard contract rides two inherited pipes:

* **heartbeat** (shard -> supervisor): one JSON line per beat —
  ``{"shard": 3, "state": "ready", "requests": 17, ...}`` — at
  ``heartbeat_interval_s``.  Silence past the supervisor's liveness
  deadline marks the shard hung.
* **control** (supervisor -> shard): ``{"op": "drain"}`` begins the
  same graceful drain SIGTERM/SIGINT do; ``{"op": "cluster", ...}``
  pushes the cluster readiness view consumed by ``/healthz/ready``.
  EOF on this pipe means the supervisor died — the shard drains itself
  rather than serve as an orphan.

Shards are launched as ``python -m repro.serve.cluster '<config json>'``
with the pipe fds (and optionally the shared listen fd) kept open via
``pass_fds`` — a fresh interpreter per shard, no fork-with-threads
hazards, and a real ``SIGKILL``-able process for the chaos harness.

``chaos`` directives (``exit-on-start``, ``exit-after:<s>``,
``no-heartbeat``) let the fault-injection suite make a *real* shard
crash, crash-loop, or hang; they are inert unless explicitly set by the
supervisor's test-only ``chaos`` map.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import socket
import sys
from dataclasses import asdict, dataclass

__all__ = [
    "ShardConfig",
    "create_listen_socket",
    "reuse_port_supported",
    "run_shard",
    "main",
]


def reuse_port_supported() -> bool:
    """Whether this platform can share a port via ``SO_REUSEPORT``."""
    return hasattr(socket, "SO_REUSEPORT")


def create_listen_socket(
    host: str,
    port: int,
    *,
    reuse_port: bool,
    listen: bool = True,
    backlog: int = 128,
) -> socket.socket:
    """A bound (and by default listening) TCP socket for the service."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        if listen:
            sock.listen(backlog)
        sock.setblocking(False)
    except BaseException:
        sock.close()
        raise
    return sock


@dataclass
class ShardConfig:
    """Everything a shard child needs, JSON-serialisable for argv.

    The fd fields are descriptor *numbers* valid in the child because
    the supervisor lists them in ``Popen(pass_fds=...)`` (which
    preserves numbering).  ``listen_fd`` is None in ``SO_REUSEPORT``
    mode — the shard then binds its own socket to ``host:port``.
    """

    shard_id: int
    host: str
    port: int
    heartbeat_fd: int
    control_fd: int
    listen_fd: int | None = None
    heartbeat_interval_s: float = 0.25
    cluster_ready: bool = True
    chaos: str = ""
    access_log: str | None = None
    # RATApp / RATServer knobs, mirroring the single-process `serve()`.
    max_batch_size: int = 64
    max_wait_us: float = 200.0
    max_pending: int = 1024
    workers: int = 1
    max_body_bytes: int = 1 << 20
    max_batch_rows: int = 4096
    max_explore_points: int = 200_000
    default_deadline_s: float | None = None
    drain_timeout_s: float = 10.0

    def to_json(self) -> str:
        return json.dumps(asdict(self), separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ShardConfig":
        return cls(**json.loads(text))


async def run_shard(config: ShardConfig) -> None:
    """Run one shard until drained (the child-process main coroutine)."""
    # Imported here so the module header stays importable for the
    # config dataclass without dragging numpy in (the supervisor only
    # needs ShardConfig / create_listen_socket).
    from ..obs import get_metrics
    from ..obs.log import event, get_logger
    from ..obs.promexport import snapshot_metrics
    from .app import RATApp
    from .server import RATServer

    log = get_logger("serve.shard")
    app = RATApp(
        max_batch_size=config.max_batch_size,
        max_wait_us=config.max_wait_us,
        max_pending=config.max_pending,
        workers=config.workers,
        max_body_bytes=config.max_body_bytes,
        max_batch_rows=config.max_batch_rows,
        max_explore_points=config.max_explore_points,
        default_deadline_s=config.default_deadline_s,
        shard_id=config.shard_id,
    )
    app.cluster_state = {"ready": bool(config.cluster_ready)}
    if config.listen_fd is not None:
        sock = socket.socket(fileno=config.listen_fd)
        sock.setblocking(False)
    else:
        sock = create_listen_socket(
            config.host, config.port, reuse_port=True
        )
    server = RATServer(
        app,
        host=config.host,
        port=config.port,
        drain_timeout_s=config.drain_timeout_s,
        sock=sock,
    )
    await server.start()

    def begin_drain() -> None:
        # Flip readiness *before* the listener goes: the heartbeat and
        # any probe that still reaches this shard report draining while
        # in-flight work finishes.
        app.draining = True
        server.drain()

    loop = asyncio.get_running_loop()
    for signame in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signame, begin_drain)

    heartbeat = os.fdopen(config.heartbeat_fd, "w", buffering=1)

    def beat() -> None:
        if config.chaos == "no-heartbeat":
            return  # chaos: a live process that looks hung
        payload = {
            "shard": config.shard_id,
            "state": "draining" if app.draining else "ready",
            "requests": app.requests,
            "inflight": app.inflight,
            "queue_depth": app.batcher.depth,
            "predictions": app.batcher.served,
            "batches": app.batcher.batches,
            "batch_seconds_ewma": app.batcher.batch_seconds_ewma,
            # Full registry snapshot for the supervisor's aggregated
            # /metrics (counters + histograms summed cluster-wide,
            # gauges kept per shard).
            "metrics": snapshot_metrics(get_metrics()),
        }
        try:
            heartbeat.write(json.dumps(payload, separators=(",", ":")) + "\n")
        except OSError:
            begin_drain()  # supervisor is gone; stop serving

    async def heartbeat_loop() -> None:
        while True:
            beat()
            await asyncio.sleep(config.heartbeat_interval_s)

    control_buffer = bytearray()

    def on_control_readable() -> None:
        try:
            data = os.read(config.control_fd, 65536)
        except OSError:
            data = b""
        if not data:
            # Supervisor exited (or closed our pipe): orphan cleanup.
            loop.remove_reader(config.control_fd)
            begin_drain()
            return
        control_buffer.extend(data)
        if b"\n" not in data:
            return
        # One split per read (not per line): linear in the buffered
        # bytes even when a burst of control messages lands at once.
        *lines, tail = control_buffer.split(b"\n")
        control_buffer[:] = tail
        for line in lines:
            try:
                message = json.loads(line)
            except ValueError:
                continue  # torn/garbled control line: skip, stay up
            op = message.get("op")
            if op == "drain":
                begin_drain()
            elif op == "cluster":
                app.cluster_state = {
                    "ready": bool(message.get("ready", True)),
                    "live": message.get("live"),
                    "shards": message.get("shards"),
                }

    os.set_blocking(config.control_fd, False)
    loop.add_reader(config.control_fd, on_control_readable)
    beat()  # first beat marks the shard READY at the supervisor
    event(
        log, "shard.serving",
        shard=config.shard_id, port=server.port, pid=os.getpid(),
    )
    beats = asyncio.ensure_future(heartbeat_loop())
    try:
        await server.run()
    finally:
        beats.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await beats
        with contextlib.suppress(OSError, RuntimeError):
            loop.remove_reader(config.control_fd)
        event(
            log, "shard.drained",
            shard=config.shard_id, requests=app.requests,
            predictions=app.batcher.served,
        )
        with contextlib.suppress(OSError, ValueError):
            heartbeat.write(
                json.dumps(
                    {
                        "shard": config.shard_id,
                        "state": "stopped",
                        "requests": app.requests,
                        "predictions": app.batcher.served,
                        "batches": app.batcher.batches,
                        # Final registry state, so the supervisor folds
                        # this incarnation's exact totals into the
                        # cluster aggregate before the process goes.
                        "metrics": snapshot_metrics(get_metrics()),
                    },
                    separators=(",", ":"),
                )
                + "\n"
            )
            heartbeat.close()


def main(argv: list[str] | None = None) -> int:
    """Child-process entry point: ``python -m repro.serve.cluster CFG``."""
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 1:
        print(
            "usage: python -m repro.serve.cluster '<shard config json>'",
            file=sys.stderr,
        )
        return 2
    config = ShardConfig.from_json(args[0])
    if config.chaos == "exit-on-start":
        return 13  # chaos: crash-loop fodder for the circuit breaker
    if config.access_log:
        from ..obs.log import configure_logging

        configure_logging(config.access_log)
    if config.chaos.startswith("exit-after:"):
        # An abrupt mid-flight crash (no drain, no cleanup): schedule a
        # hard exit once serving, the way a segfault or OOM kill lands.
        delay_s = float(config.chaos.partition(":")[2])

        async def chaotic() -> None:
            loop = asyncio.get_running_loop()
            loop.call_later(delay_s, os._exit, 13)
            await run_shard(config)

        asyncio.run(chaotic())
        return 0
    asyncio.run(run_shard(config))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised as subprocess
    sys.exit(main())
