"""On-chip buffer pool with single/double-buffer semantics.

The buffer organisation is what distinguishes Figure 2's three scenarios:
one buffer forces strict read-compute-write alternation; two buffers let
the DMA engine fill one while the kernel drains the other.  The pool also
enforces a capacity check against the device's block RAM, because double
buffering's hidden price is *doubling* the I/O buffer footprint — a
resource-test interaction the paper's Section 3.3 calls "readily
measurable".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError

__all__ = ["Buffer", "BufferPool"]


@dataclass
class Buffer:
    """One on-chip data buffer and its occupancy state."""

    index: int
    capacity_bytes: float
    filled_bytes: float = 0.0
    owner_iteration: int | None = None

    def fill(self, nbytes: float, iteration: int) -> None:
        """Mark the buffer as loaded with one iteration's input block."""
        if self.owner_iteration is not None:
            raise SimulationError(
                f"buffer {self.index} still owned by iteration "
                f"{self.owner_iteration}; cannot fill for {iteration}"
            )
        if nbytes > self.capacity_bytes:
            raise SimulationError(
                f"buffer {self.index} overflow: {nbytes} B into "
                f"{self.capacity_bytes} B"
            )
        self.filled_bytes = nbytes
        self.owner_iteration = iteration

    def release(self) -> None:
        """Free the buffer after its compute has consumed it."""
        if self.owner_iteration is None:
            raise SimulationError(
                f"buffer {self.index} released while already free"
            )
        self.filled_bytes = 0.0
        self.owner_iteration = None

    @property
    def free(self) -> bool:
        """True when no iteration owns the buffer."""
        return self.owner_iteration is None


@dataclass
class BufferPool:
    """A fixed set of equal-sized input buffers.

    ``n_buffers=1`` gives single-buffered semantics; ``2`` double-buffered.
    Larger pools model deeper prefetch queues (beyond the paper, but a
    natural extension the simulator supports).
    """

    n_buffers: int
    capacity_bytes: float
    buffers: list[Buffer] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_buffers < 1:
            raise SimulationError(f"n_buffers must be >= 1, got {self.n_buffers}")
        if self.capacity_bytes <= 0:
            raise SimulationError(
                f"capacity_bytes must be positive, got {self.capacity_bytes}"
            )
        self.buffers = [
            Buffer(index=i, capacity_bytes=self.capacity_bytes)
            for i in range(self.n_buffers)
        ]

    @property
    def total_bytes(self) -> float:
        """Aggregate on-chip storage the pool consumes."""
        return self.n_buffers * self.capacity_bytes

    def acquire_free(self, iteration: int, nbytes: float) -> Buffer:
        """Claim a free buffer for an incoming block.

        Raises :class:`~repro.errors.SimulationError` when none is free —
        the scheduler must never issue a read without a free buffer, so
        this guards the simulator's own correctness.
        """
        for buffer in self.buffers:
            if buffer.free:
                buffer.fill(nbytes, iteration)
                return buffer
        raise SimulationError(
            f"no free buffer for iteration {iteration} "
            f"(pool size {self.n_buffers})"
        )

    def release_iteration(self, iteration: int) -> None:
        """Release the buffer owned by a finished iteration."""
        for buffer in self.buffers:
            if buffer.owner_iteration == iteration:
                buffer.release()
                return
        raise SimulationError(f"no buffer owned by iteration {iteration}")

    def free_count(self) -> int:
        """Number of currently free buffers."""
        return sum(1 for b in self.buffers if b.free)

    def fits_device_bram(self, device_bram_bytes: float) -> bool:
        """Capacity check against a device's total block RAM."""
        return self.total_bytes <= device_bram_bytes
