"""Minimal discrete-event simulation core.

A time-ordered event queue with deterministic tie-breaking (insertion
order), sufficient for the transfer/compute granularity the RC system
simulator works at.  Kept deliberately free of domain knowledge so it can
be reused (and tested) in isolation.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SimulationError

__all__ = ["Event", "EventQueue"]


def _describe(event: "Event") -> str:
    """Human-readable event reference for error messages."""
    label = repr(event.label) if event.label else "unlabelled"
    return f"event #{event.sequence} ({label}) at t={event.time:.9g}"


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback.

    Ordering is ``(time, sequence)`` so simultaneous events fire in the
    order they were scheduled — determinism matters because the system
    simulator's buffer bookkeeping assumes it.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")


class EventQueue:
    """The simulation clock and pending-event heap.

    ``on_fire`` is an optional per-event observer: when set, it is called
    with each event immediately before its action runs (the clock already
    advanced).  The simulator wires this to the observability layer's
    :class:`~repro.obs.simtrace.SimTrace` so every scheduled callback —
    labels included — appears in exported traces.  Left as ``None`` the
    only cost is one attribute check per event.
    """

    def __init__(
        self, on_fire: Callable[[Event], None] | None = None
    ) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._fired = 0
        self.on_fire = on_fire

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events not yet fired."""
        return len(self._heap)

    @property
    def fired(self) -> int:
        """Number of events executed so far."""
        return self._fired

    def schedule(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(
            time=self._now + delay,
            sequence=next(self._counter),
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self, time: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now ({self._now})"
            )
        return self.schedule(time - self._now, action, label)

    def step(self) -> Event:
        """Fire the next event; returns it.  Raises when empty.

        A :class:`SimulationError` escaping the event's action is
        re-raised with the event's label and firing time attached, so a
        failure deep in a callback chain names the schedule entry that
        triggered it.
        """
        if not self._heap:
            raise SimulationError("event queue is empty")
        event = heapq.heappop(self._heap)
        self._now = event.time
        self._fired += 1
        if self.on_fire is not None:
            self.on_fire(event)
        try:
            event.action()
        except SimulationError as exc:
            raise SimulationError(f"{exc} [while firing {_describe(event)}]") from exc
        return event

    def run(self, max_events: int = 10_000_000) -> float:
        """Fire events until the queue drains; returns the final time.

        ``max_events`` guards against a scheduling bug producing an
        infinite self-rescheduling loop.
        """
        executed = 0
        last: Event | None = None
        while self._heap:
            last = self.step()
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"event budget exceeded ({max_events}); "
                    "likely a self-rescheduling loop "
                    f"[last fired: {_describe(last)}]"
                )
        return self._now

    def run_until(self, time: float, max_events: int = 10_000_000) -> float:
        """Fire events with time <= ``time``; advances the clock to it."""
        if time < self._now:
            raise SimulationError(f"cannot run backwards to {time}")
        executed = 0
        last: Event | None = None
        while self._heap and self._heap[0].time <= time:
            last = self.step()
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"event budget exceeded ({max_events}) "
                    f"[last fired: {_describe(last)}]"
                )
        self._now = max(self._now, time)
        return self._now
