"""Minimal discrete-event simulation core.

A time-ordered event queue with deterministic tie-breaking (insertion
order), sufficient for the transfer/compute granularity the RC system
simulator works at.  Kept deliberately free of domain knowledge so it can
be reused (and tested) in isolation.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback.

    Ordering is ``(time, sequence)`` so simultaneous events fire in the
    order they were scheduled — determinism matters because the system
    simulator's buffer bookkeeping assumes it.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")


class EventQueue:
    """The simulation clock and pending-event heap."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._fired = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events not yet fired."""
        return len(self._heap)

    @property
    def fired(self) -> int:
        """Number of events executed so far."""
        return self._fired

    def schedule(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(
            time=self._now + delay,
            sequence=next(self._counter),
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self, time: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now ({self._now})"
            )
        return self.schedule(time - self._now, action, label)

    def step(self) -> Event:
        """Fire the next event; returns it.  Raises when empty."""
        if not self._heap:
            raise SimulationError("event queue is empty")
        event = heapq.heappop(self._heap)
        self._now = event.time
        self._fired += 1
        event.action()
        return event

    def run(self, max_events: int = 10_000_000) -> float:
        """Fire events until the queue drains; returns the final time.

        ``max_events`` guards against a scheduling bug producing an
        infinite self-rescheduling loop.
        """
        executed = 0
        while self._heap:
            self.step()
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"event budget exceeded ({max_events}); "
                    "likely a self-rescheduling loop"
                )
        return self._now

    def run_until(self, time: float, max_events: int = 10_000_000) -> float:
        """Fire events with time <= ``time``; advances the clock to it."""
        if time < self._now:
            raise SimulationError(f"cannot run backwards to {time}")
        executed = 0
        while self._heap and self._heap[0].time <= time:
            self.step()
            executed += 1
            if executed > max_events:
                raise SimulationError(f"event budget exceeded ({max_events})")
        self._now = max(self._now, time)
        return self._now
