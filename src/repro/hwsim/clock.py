"""Clock domains: cycle/second conversion for the simulator.

The RAT worksheet reasons in seconds; the kernel model reasons in cycles.
:class:`ClockDomain` is the (deliberately tiny) bridge, with ceil-to-cycle
semantics where hardware would quantise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError
from ..units import MHZ

__all__ = ["ClockDomain"]


@dataclass(frozen=True)
class ClockDomain:
    """A fixed-frequency clock."""

    frequency_hz: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ParameterError(
                f"frequency_hz must be positive, got {self.frequency_hz}"
            )

    @classmethod
    def from_mhz(cls, mhz: float) -> "ClockDomain":
        """Construct from the worksheet's MHz convention."""
        return cls(frequency_hz=mhz * MHZ)

    @property
    def period_s(self) -> float:
        """Duration of one cycle in seconds."""
        return 1.0 / self.frequency_hz

    @property
    def frequency_mhz(self) -> float:
        """Frequency in MHz for display."""
        return self.frequency_hz / MHZ

    def cycles_to_seconds(self, cycles: float) -> float:
        """Exact conversion of a cycle count to seconds."""
        if cycles < 0:
            raise ParameterError(f"cycles must be >= 0, got {cycles}")
        return cycles / self.frequency_hz

    def seconds_to_cycles(self, seconds: float) -> int:
        """Whole cycles needed to cover a duration (ceiling).

        Values within one part in 1e9 of an integer snap to it, so a
        duration produced by :meth:`cycles_to_seconds` round-trips
        exactly despite float rounding.
        """
        if seconds < 0:
            raise ParameterError(f"seconds must be >= 0, got {seconds}")
        value = seconds * self.frequency_hz
        nearest = round(value)
        if abs(value - nearest) <= 1e-9 * max(1.0, abs(nearest)):
            return int(nearest)
        return math.ceil(value)
