"""Cycle-level RC system simulator.

This package is the stand-in for the paper's physical testbeds: it
produces the "Actual" columns of Tables 3, 6 and 9 by *executing* a
modelled design — DMA transfers over the calibrated bus model, a pipelined
kernel with fill latency and stalls, and a single- or double-buffer
controller — rather than evaluating the closed-form RAT equations.  The
gap between this simulator's measurements and the analytic prediction
therefore has the same mechanisms the paper reports: repeated-transfer
overheads and jitter on the communication side, pipeline fill and stalls
on the computation side.

Modules
-------
``clock``    — clock domains (cycles <-> seconds).
``kernel``   — pipelined-kernel timing model (fill, stalls, II).
``memory``   — on-chip buffer pool with single/double-buffer semantics.
``dma``      — DMA engine: channel occupancy over the bus model.
``engine``   — a minimal discrete-event core (time-ordered event queue).
``system``   — :class:`RCSystemSim`: the full co-processor loop.
``timeline`` — converts simulation traces into Figure-2 style timelines.
"""

from .clock import ClockDomain
from .composite import CompositeResult, StageRun, run_composite
from .dma import DMAEngine
from .engine import Event, EventQueue
from .kernel import PipelinedKernel
from .memory import BufferPool
from .system import RCSystemSim, SimulationResult
from .timeline import SteadyState, analytic_gap, steady_state, trace_timeline

__all__ = [
    "BufferPool",
    "ClockDomain",
    "CompositeResult",
    "DMAEngine",
    "Event",
    "EventQueue",
    "PipelinedKernel",
    "RCSystemSim",
    "SimulationResult",
    "StageRun",
    "SteadyState",
    "analytic_gap",
    "run_composite",
    "steady_state",
    "trace_timeline",
]
