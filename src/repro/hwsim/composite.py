"""Composite-application simulation with reconfiguration costs.

The throughput test "ignores reconfiguration and other setup times" —
safe for the paper's single-kernel case studies, but a composite
application that timeshares one FPGA across kernels pays a bitstream
reload between stages.  This module simulates staged execution and makes
the ignored term explicit, so its ablation benchmark can locate where
the paper's assumption breaks: when per-stage work shrinks toward the
tens of milliseconds a Virtex-4-class full reconfiguration costs.

Analytic counterpart: :class:`repro.core.composite.CompositeAnalysis`
(which, following the paper, charges nothing for reconfiguration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import SimulationError
from .system import RCSystemSim, SimulationResult

__all__ = ["StageRun", "CompositeResult", "run_composite"]

# Full-device configuration times of the era (bitstream size / config
# clock): tens of milliseconds for Virtex-4/Stratix-II class parts.
DEFAULT_RECONFIGURATION_S = 50e-3


@dataclass(frozen=True)
class StageRun:
    """One stage's simulation outcome within the composite run."""

    name: str
    start: float
    reconfiguration_s: float
    result: SimulationResult

    @property
    def end(self) -> float:
        """Completion time of the stage (including its reconfiguration)."""
        return self.start + self.reconfiguration_s + self.result.t_rc


@dataclass(frozen=True)
class CompositeResult:
    """The full staged execution."""

    stages: tuple[StageRun, ...]

    @property
    def t_total(self) -> float:
        """Wall clock of the whole composite run."""
        return self.stages[-1].end if self.stages else 0.0

    @property
    def t_reconfiguration(self) -> float:
        """Total time spent reloading bitstreams."""
        return sum(stage.reconfiguration_s for stage in self.stages)

    @property
    def reconfiguration_fraction(self) -> float:
        """Share of the run spent reconfiguring — the size of the error
        made by the paper's 'ignore reconfiguration' simplification."""
        if self.t_total == 0:
            return 0.0
        return self.t_reconfiguration / self.t_total

    def speedup(self, t_soft_total: float) -> float:
        """Composite speedup against the summed software baselines."""
        if t_soft_total <= 0:
            raise SimulationError(
                f"t_soft_total must be positive, got {t_soft_total}"
            )
        return t_soft_total / self.t_total


def run_composite(
    stages: Sequence[tuple[str, RCSystemSim]],
    *,
    reconfiguration_s: float = DEFAULT_RECONFIGURATION_S,
    reconfigure_first: bool = True,
) -> CompositeResult:
    """Simulate kernels back-to-back on one timeshared FPGA.

    ``reconfiguration_s`` is charged before every stage (or every stage
    after the first with ``reconfigure_first=False``, modelling a device
    that boots configured).
    """
    if not stages:
        raise SimulationError("at least one stage is required")
    if reconfiguration_s < 0:
        raise SimulationError("reconfiguration_s must be >= 0")
    runs: list[StageRun] = []
    clock = 0.0
    for index, (name, sim) in enumerate(stages):
        reconfig = (
            reconfiguration_s
            if (index > 0 or reconfigure_first)
            else 0.0
        )
        result = sim.run()
        run = StageRun(
            name=name,
            start=clock,
            reconfiguration_s=reconfig,
            result=result,
        )
        runs.append(run)
        clock = run.end
    return CompositeResult(stages=tuple(runs))
