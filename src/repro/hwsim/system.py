"""The full RC co-processor simulation.

:class:`RCSystemSim` executes the loop the RAT throughput test models
analytically: for each iteration, DMA an input block into an on-chip
buffer, run the pipelined kernel over it, and DMA results back — under
single- or double-buffered buffer pools, with per-transfer protocol
overheads and jitter from the bus model and fill/stall effects from the
kernel model.  Its measurements populate the "Actual" columns of the
reproduction's Tables 3, 6 and 9.

Output policies mirror the case studies:

* ``per_iteration`` — each block's results return before the next block's
  results (2-D PDF: 65536 bins per iteration; MD: all molecules);
* ``at_end`` — results accumulate on-chip and return once after the final
  iteration (1-D PDF: 256 bins transferred "in a single block after the
  algorithm has completed");
* output transfers may additionally be *chunked* (``output_chunk_bytes``)
  to model vendor FIFO limits — the mechanism behind the 2-D PDF's
  communication blow-up.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Literal

from ..errors import SimulationError
from ..interconnect.bus import BusModel
from ..obs.simtrace import TRACK_EVENTS, SimTrace, record_system_run
from .clock import ClockDomain
from .dma import DMAEngine, DMATransfer
from .engine import EventQueue
from .kernel import PipelinedKernel
from .memory import BufferPool
from ..core.buffering import BufferingMode, OverlapTimeline, TimelineSegment

__all__ = ["RCSystemSim", "SimulationResult"]

OutputPolicy = Literal["per_iteration", "at_end", "none"]


@dataclass(frozen=True)
class SimulationResult:
    """Aggregated measurements from one simulated run.

    ``t_comm_per_iteration`` and ``t_comp_per_iteration`` are means, the
    quantities the paper reports as "actual" ``t_comm``/``t_comp``;
    ``t_rc`` is the wall-clock makespan, which exceeds
    ``n_iter * (t_comm + t_comp)`` when per-transfer overheads desynchronise
    the loop (the paper's 1-D PDF measured exactly this: total time above
    the sum of its parts).
    """

    clock_mhz: float
    mode: BufferingMode
    n_iterations: int
    t_rc: float
    t_comm_total: float
    t_comp_total: float
    t_comm_per_iteration: float
    t_comp_per_iteration: float
    input_transfers: int
    output_transfers: int
    timeline: OverlapTimeline

    @property
    def util_comp(self) -> float:
        """Computation utilization over the realised schedule."""
        return self.t_comp_total / self.t_rc

    @property
    def util_comm(self) -> float:
        """Communication (channel-occupancy) utilization."""
        return self.t_comm_total / self.t_rc

    def speedup(self, t_soft: float) -> float:
        """Measured speedup against a software baseline."""
        if t_soft <= 0:
            raise SimulationError(f"t_soft must be positive, got {t_soft}")
        return t_soft / self.t_rc

    def as_actual_column(self, t_soft: float) -> dict[str, float]:
        """Format measurements as a worksheet "Actual" column.

        Matches the key set of
        :meth:`repro.core.throughput.ThroughputPrediction.as_dict` so
        :class:`~repro.core.worksheet.PerformanceTable` can render the
        measured column beside the predictions.  Utilizations follow the
        paper's convention for actual values — "computed from this
        information using the same equations as the predicted values",
        i.e. Equations (8)-(11) applied to the measured per-iteration
        means rather than to the wall-clock makespan.
        """
        t_comm = self.t_comm_per_iteration
        t_comp = self.t_comp_per_iteration
        if self.mode is BufferingMode.SINGLE:
            denom = t_comm + t_comp
        else:
            denom = max(t_comm, t_comp)
        return {
            "clock_mhz": self.clock_mhz,
            "t_comm": t_comm,
            "t_comp": t_comp,
            "t_rc": self.t_rc,
            "speedup": self.speedup(t_soft),
            "util_comm": t_comm / denom,
            "util_comp": t_comp / denom,
        }


@dataclass
class RCSystemSim:
    """Event-driven simulation of the buffered co-processor loop.

    Parameters
    ----------
    kernel:
        Pipelined-kernel timing model.
    clock:
        Fabric clock domain.
    bus:
        Calibrated bus model (carries protocol overheads and jitter).
    elements_per_block / bytes_per_element:
        Input block geometry (one iteration's transfer).
    output_bytes_per_block:
        Result volume per iteration (ignored for ``output_policy="none"``).
    n_iterations:
        Number of communication+computation blocks.
    mode:
        Single or double buffering (sizes the buffer pool).
    output_policy:
        When results return to the host (see module docstring).
    output_chunk_bytes:
        If set, output transfers split into chunks of at most this size,
        each paying full per-transfer overhead.
    host_turnaround_s:
        Host-side delay between finishing an iteration and issuing the
        next input transfer (API call return, loop bookkeeping).  The
        paper's measured 1-D PDF total exceeded ``N_iter * (t_comm +
        t_comp)`` — time attributed to neither lane; this parameter is
        that residue.
    n_buffers:
        Explicit buffer-pool depth, overriding the mode's default (1 for
        single, 2 for double).  Values above 2 model deeper prefetch
        queues — beyond the paper, but a natural what-if the simulator
        supports (see the buffer-depth ablation benchmark).
    trace:
        Optional :class:`~repro.obs.simtrace.SimTrace` collector.  When
        set, :meth:`run` records every fired scheduler event as an
        instant marker and every DMA transfer / compute interval on the
        Figure-2 write/compute/read tracks, so the run exports as a
        Chrome trace (``rat trace``).  ``None`` (the default) adds no
        per-event work.
    """

    kernel: PipelinedKernel
    clock: ClockDomain
    bus: BusModel
    elements_per_block: int
    bytes_per_element: float
    output_bytes_per_block: float
    n_iterations: int
    mode: BufferingMode = BufferingMode.SINGLE
    output_policy: OutputPolicy = "per_iteration"
    output_chunk_bytes: float | None = None
    host_turnaround_s: float = 0.0
    n_buffers: int | None = None
    trace: SimTrace | None = None

    def __post_init__(self) -> None:
        if self.elements_per_block < 1:
            raise SimulationError("elements_per_block must be >= 1")
        if self.bytes_per_element <= 0:
            raise SimulationError("bytes_per_element must be positive")
        if self.n_iterations < 1:
            raise SimulationError("n_iterations must be >= 1")
        if self.output_bytes_per_block < 0:
            raise SimulationError("output_bytes_per_block must be >= 0")
        if self.output_chunk_bytes is not None and self.output_chunk_bytes <= 0:
            raise SimulationError("output_chunk_bytes must be positive")
        if self.host_turnaround_s < 0:
            raise SimulationError("host_turnaround_s must be >= 0")
        if self.n_buffers is not None and self.n_buffers < 1:
            raise SimulationError("n_buffers must be >= 1")

    @property
    def input_bytes_per_block(self) -> float:
        """Input transfer size per iteration."""
        return self.elements_per_block * self.bytes_per_element

    def _output_chunks(self, nbytes: float) -> list[float]:
        """Split an output transfer into chunk-limited pieces."""
        if nbytes <= 0:
            return []
        if self.output_chunk_bytes is None or nbytes <= self.output_chunk_bytes:
            return [nbytes]
        n_full = int(nbytes // self.output_chunk_bytes)
        chunks = [self.output_chunk_bytes] * n_full
        remainder = nbytes - n_full * self.output_chunk_bytes
        if remainder > 0:
            chunks.append(remainder)
        return chunks

    def run(self) -> SimulationResult:
        """Execute the full loop and aggregate measurements."""
        queue = EventQueue()
        if self.trace is not None:
            trace = self.trace

            def _record_event(event) -> None:
                trace.instant(
                    TRACK_EVENTS,
                    event.label or f"event-{event.sequence}",
                    event.time,
                    {"sequence": event.sequence},
                )

            queue.on_fire = _record_event
        dma = DMAEngine(bus=self.bus)
        n_buffers = self.n_buffers or (
            2 if self.mode is BufferingMode.DOUBLE else 1
        )
        pool = BufferPool(
            n_buffers=n_buffers, capacity_bytes=self.input_bytes_per_block
        )

        compute_segments: list[TimelineSegment] = []
        ready_blocks: list[int] = []  # iterations with data in a buffer
        state = {
            "next_read": 1,
            "read_in_flight": False,
            "unit_busy": False,
            "computed": 0,
        }

        def try_issue_read() -> None:
            if state["read_in_flight"] or state["next_read"] > self.n_iterations:
                return
            if pool.free_count() == 0:
                return
            iteration = state["next_read"]
            state["next_read"] += 1
            state["read_in_flight"] = True
            pool.acquire_free(iteration, self.input_bytes_per_block)
            transfer = dma.issue(
                iteration, "read", self.input_bytes_per_block, queue.now
            )

            def on_read_done(iteration: int = iteration) -> None:
                state["read_in_flight"] = False
                ready_blocks.append(iteration)
                try_start_compute()
                # Double buffering: the host queues the next block as soon
                # as the channel frees, no turnaround (the pipelined host
                # thread prepared it during the previous transfer).
                try_issue_read()

            queue.schedule_at(transfer.end_time, on_read_done, f"R{iteration}")

        def schedule_read() -> None:
            # Reads triggered by an iteration *completing* pay the host
            # turnaround (result handling, loop bookkeeping) before issue;
            # the guards inside try_issue_read make redundant wakeups
            # benign.
            queue.schedule(self.host_turnaround_s, try_issue_read, "host-turnaround")

        def try_start_compute() -> None:
            if state["unit_busy"] or not ready_blocks:
                return
            iteration = ready_blocks.pop(0)
            state["unit_busy"] = True
            duration = self.kernel.block_time(self.elements_per_block, self.clock)
            start = queue.now
            compute_segments.append(
                TimelineSegment("comp", "compute", iteration, start, start + duration)
            )

            def on_compute_done(iteration: int = iteration) -> None:
                state["unit_busy"] = False
                state["computed"] += 1
                pool.release_iteration(iteration)
                if self.output_policy == "per_iteration":
                    issue_output(iteration)
                elif (
                    self.output_policy == "at_end"
                    and state["computed"] == self.n_iterations
                ):
                    issue_output(iteration)
                schedule_read()
                try_start_compute()

            queue.schedule_at(start + duration, on_compute_done, f"C{iteration}")

        def issue_output(iteration: int) -> None:
            for chunk in self._output_chunks(self.output_bytes_per_block):
                dma.issue(iteration, "write", chunk, queue.now)
            # Output completions need no callback: nothing downstream
            # waits on them; the makespan accounts for them below.

        try_issue_read()
        queue.run()

        if state["computed"] != self.n_iterations:
            raise SimulationError(
                f"simulation ended after {state['computed']} of "
                f"{self.n_iterations} iterations"
            )

        input_transfers = [t for t in dma.transfers if t.direction == "read"]
        output_transfers = [t for t in dma.transfers if t.direction == "write"]
        t_comm_total = dma.busy_time()
        t_comp_total = sum(s.duration for s in compute_segments)
        last_compute = max(s.end for s in compute_segments)
        last_transfer = max((t.end_time for t in dma.transfers), default=0.0)
        t_rc = max(last_compute, last_transfer)

        comm_segments = [
            TimelineSegment(
                "comm",
                "read" if t.direction == "read" else "write",
                t.iteration,
                t.start_time,
                t.end_time,
            )
            for t in dma.transfers
            # Duplex engines overlap directions; the two-lane timeline
            # renders reads only in that case to keep lanes overlap-free.
            if not (dma.duplex and t.direction == "write")
        ]
        timeline = OverlapTimeline(
            mode=self.mode, segments=tuple(comm_segments + compute_segments)
        )
        if self.trace is not None:
            # Full-fidelity lanes: every transfer on its directional
            # track (including duplexed write-backs the two-lane
            # timeline drops), plus the realised compute schedule.
            record_system_run(self.trace, dma.transfers, compute_segments)

        # Per-iteration communication mean: total channel occupancy over
        # iterations — the paper's per-iteration "actual t_comm".
        return SimulationResult(
            clock_mhz=self.clock.frequency_mhz,
            mode=self.mode,
            n_iterations=self.n_iterations,
            t_rc=t_rc,
            t_comm_total=t_comm_total,
            t_comp_total=t_comp_total,
            t_comm_per_iteration=t_comm_total / self.n_iterations,
            t_comp_per_iteration=t_comp_total / self.n_iterations,
            input_transfers=len(input_transfers),
            output_transfers=len(output_transfers),
            timeline=timeline,
        )
