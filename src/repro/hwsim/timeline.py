"""Timeline analysis utilities for simulated runs.

Bridges the event-driven simulator's output back to the analytic model:
given a :class:`~repro.core.buffering.OverlapTimeline` produced by
:class:`~repro.hwsim.system.RCSystemSim`, these helpers extract the
steady-state per-iteration period and compare the realised schedule with
the closed-form Equations (5)/(6) — the cross-validation at the heart of
the reproduction (predicted vs. "actual" columns).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.buffering import BufferingMode, OverlapTimeline
from ..errors import SimulationError
from ..obs.simtrace import SimTrace, timeline_to_trace

__all__ = ["SteadyState", "steady_state", "analytic_gap", "trace_timeline"]


@dataclass(frozen=True)
class SteadyState:
    """Steady-state behaviour extracted from a timeline."""

    period: float
    startup: float
    n_measured: int

    @property
    def rate(self) -> float:
        """Iterations per second in steady state."""
        if self.period == 0:
            raise SimulationError("zero steady-state period")
        return 1.0 / self.period


def steady_state(timeline: OverlapTimeline, skip: int = 2) -> SteadyState:
    """Estimate the steady-state iteration period of a schedule.

    Uses compute-completion times: after ``skip`` warm-up iterations
    (double buffering needs at least one to reach steady state), the mean
    gap between consecutive compute completions is the period.  The
    startup is the completion time of the first iteration.
    """
    completions = sorted(
        segment.end
        for segment in timeline.segments
        if segment.lane == "comp"
    )
    if len(completions) < skip + 2:
        raise SimulationError(
            f"need at least {skip + 2} compute segments, got {len(completions)}"
        )
    tail = completions[skip:]
    gaps = [b - a for a, b in zip(tail, tail[1:])]
    return SteadyState(
        period=sum(gaps) / len(gaps),
        startup=completions[0],
        n_measured=len(gaps),
    )


def analytic_gap(
    timeline: OverlapTimeline,
    t_comm: float,
    t_comp: float,
    n_iterations: int,
) -> float:
    """Relative gap between the realised makespan and Equations (5)/(6).

    Returns ``(makespan - analytic) / analytic``.  Positive values mean
    the realised schedule is slower than the closed-form model — expected
    for double buffering (startup transient) and for runs with protocol
    overheads the analytic inputs exclude.
    """
    if n_iterations < 1:
        raise SimulationError(f"n_iterations must be >= 1, got {n_iterations}")
    if timeline.mode is BufferingMode.SINGLE:
        analytic = n_iterations * (t_comm + t_comp)
    else:
        analytic = n_iterations * max(t_comm, t_comp)
    if analytic <= 0:
        raise SimulationError("analytic time must be positive")
    return (timeline.makespan() - analytic) / analytic


def trace_timeline(timeline: OverlapTimeline, name: str = "timeline") -> SimTrace:
    """Export a schedule as a Chrome-trace collector.

    Bridges any :class:`~repro.core.buffering.OverlapTimeline` — analytic
    (Figure-2 constructors) or realised (:class:`RCSystemSim`) — to the
    observability layer, so ``trace_timeline(result.timeline).write(path)``
    yields a file openable in Perfetto/chrome://tracing with the paper's
    write/compute/read lanes as named tracks.
    """
    return timeline_to_trace(timeline, SimTrace(name=name))
