"""Pipelined-kernel timing model.

Models the computation side of an RC design the way the paper's case
studies describe theirs: ``replicas`` parallel pipelines, each completing
``ops_per_cycle_per_replica`` operations per cycle when full, with a
one-time fill latency and a stall fraction covering the effects the paper
folds into its conservative ``throughput_proc`` derating ("enough latency
and pipeline stalls existed to genuinely warrant a 17% reduction in the
throughput estimate").

The block-processing time is computed cycle-accurately:

``cycles(block) = fill_latency + ceil(elements * ops_per_element /
(replicas * ops_per_cycle_per_replica) * (1 + stall_fraction))``

so the *ideal* throughput of the architecture is
``replicas * ops_per_cycle_per_replica`` ops/cycle, and the *effective*
throughput for a given block size is what the simulator actually measures
— fill and stalls included.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError
from .clock import ClockDomain

__all__ = ["PipelinedKernel"]


@dataclass(frozen=True)
class PipelinedKernel:
    """Timing model of one hardware kernel.

    Parameters
    ----------
    name:
        Kernel label for traces.
    ops_per_element:
        Operation count per element — same definition as the worksheet's
        ``N_ops/element`` (the simulator and the analytic model must agree
        on operation scope, exactly as the paper requires of
        ``throughput_proc``).
    replicas:
        Parallel pipeline count (1-D PDF: 8).
    ops_per_cycle_per_replica:
        Sustained per-pipeline rate when full (1-D PDF: 3 — compare,
        multiply, accumulate each cycle).
    fill_latency_cycles:
        One-time pipeline fill cost per block.
    stall_fraction:
        Fractional cycle inflation from hazards, drains between element
        groups, and control bubbles. 0 = perfect pipelining.
    """

    name: str
    ops_per_element: float
    replicas: int = 1
    ops_per_cycle_per_replica: float = 1.0
    fill_latency_cycles: int = 0
    stall_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.ops_per_element <= 0:
            raise ParameterError(f"{self.name}: ops_per_element must be positive")
        if self.replicas < 1:
            raise ParameterError(f"{self.name}: replicas must be >= 1")
        if self.ops_per_cycle_per_replica <= 0:
            raise ParameterError(
                f"{self.name}: ops_per_cycle_per_replica must be positive"
            )
        if self.fill_latency_cycles < 0:
            raise ParameterError(f"{self.name}: fill_latency_cycles must be >= 0")
        if self.stall_fraction < 0:
            raise ParameterError(f"{self.name}: stall_fraction must be >= 0")

    @property
    def ideal_ops_per_cycle(self) -> float:
        """Architecture's peak rate: ``replicas * per-replica rate``."""
        return self.replicas * self.ops_per_cycle_per_replica

    def block_cycles(self, elements: int) -> int:
        """Cycles to process one block of ``elements`` elements."""
        if elements < 1:
            raise ParameterError(f"elements must be >= 1, got {elements}")
        steady = elements * self.ops_per_element / self.ideal_ops_per_cycle
        return self.fill_latency_cycles + math.ceil(steady * (1.0 + self.stall_fraction))

    def block_time(self, elements: int, clock: ClockDomain) -> float:
        """Seconds to process one block at a given clock."""
        return clock.cycles_to_seconds(self.block_cycles(elements))

    def effective_ops_per_cycle(self, elements: int) -> float:
        """Measured throughput for a block size, fill and stalls included.

        This is the quantity the worksheet's ``throughput_proc`` tries to
        anticipate; comparing it with :attr:`ideal_ops_per_cycle`
        quantifies the derating a designer should apply (the 1-D PDF's
        24 -> 20).
        """
        total_ops = elements * self.ops_per_element
        return total_ops / self.block_cycles(elements)

    def describe(self) -> str:
        """One-line summary for traces and reports."""
        return (
            f"{self.name}: {self.replicas} x "
            f"{self.ops_per_cycle_per_replica:g} ops/cycle "
            f"(ideal {self.ideal_ops_per_cycle:g}), "
            f"fill {self.fill_latency_cycles} cyc, "
            f"stalls {self.stall_fraction:.0%}"
        )
