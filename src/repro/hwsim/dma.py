"""DMA engine: serialised channel occupancy over the bus model.

The interconnect is a single serial resource (the basis of RAT's
communication-utilization metric), so the DMA engine tracks when the
channel next becomes free and issues each transfer at
``max(request_time, channel_free)``.  Transfer durations come from the
:class:`~repro.interconnect.bus.BusModel`, i.e. they include the
per-transfer protocol overhead and jitter that separate "actual" from
"predicted" communication in the paper's case studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..interconnect.bus import BusModel

__all__ = ["DMATransfer", "DMAEngine"]


@dataclass(frozen=True)
class DMATransfer:
    """One completed DMA operation with its schedule."""

    iteration: int
    direction: str  # "read" (into FPGA) or "write" (back to host)
    nbytes: float
    request_time: float
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        """Channel-occupancy seconds."""
        return self.end_time - self.start_time

    @property
    def queue_delay(self) -> float:
        """Seconds spent waiting for the channel."""
        return self.start_time - self.request_time


@dataclass
class DMAEngine:
    """Schedules transfers on the shared channel.

    Note on direction naming: the engine names transfers from the FPGA's
    perspective to match Figure 2 — a ``read`` brings input data *into*
    the FPGA (the host's "write", charged at the bus's write rate) and a
    ``write`` returns results (the host's "read").

    Half-duplex links (PCI-X) serialise all transfers on one channel;
    full-duplex links (HyperTransport) serialise per direction only, so a
    result write-back can overlap the next input read.  ``duplex``
    defaults from the bus's interconnect spec.
    """

    bus: BusModel
    duplex: bool | None = None
    channel_free: float = 0.0
    _direction_free: dict = field(default_factory=lambda: {"read": 0.0, "write": 0.0})
    transfers: list[DMATransfer] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.duplex is None:
            self.duplex = self.bus.spec.duplex

    def issue(
        self, iteration: int, direction: str, nbytes: float, request_time: float
    ) -> DMATransfer:
        """Issue one transfer; returns its schedule.

        The simulation's event loop drives time; the engine only does the
        arithmetic of serialising on the channel.
        """
        if direction not in ("read", "write"):
            raise SimulationError(f"unknown DMA direction {direction!r}")
        if request_time < 0:
            raise SimulationError(f"request_time must be >= 0, got {request_time}")
        # FPGA-perspective read = host-perspective write (input data moves
        # host->FPGA at the write rate), and vice versa.
        host_read = direction == "write"
        duration = self.bus.transfer_time(nbytes, read=host_read)
        free = self._direction_free[direction] if self.duplex else self.channel_free
        start = max(request_time, free)
        transfer = DMATransfer(
            iteration=iteration,
            direction=direction,
            nbytes=nbytes,
            request_time=request_time,
            start_time=start,
            end_time=start + duration,
        )
        if self.duplex:
            self._direction_free[direction] = transfer.end_time
        else:
            self.channel_free = transfer.end_time
        self.transfers.append(transfer)
        return transfer

    def busy_time(self, direction: str | None = None) -> float:
        """Total channel occupancy, optionally per direction."""
        return sum(
            t.duration
            for t in self.transfers
            if direction is None or t.direction == direction
        )

    def mean_duration(self, direction: str | None = None) -> float:
        """Mean transfer duration, optionally per direction."""
        matching = [
            t for t in self.transfers
            if direction is None or t.direction == direction
        ]
        if not matching:
            raise SimulationError("no matching transfers recorded")
        return sum(t.duration for t in matching) / len(matching)
