"""Interconnect simulation substrate.

The paper measures its ``alpha`` parameters with hardware microbenchmarks:
"microbenchmarks composed of simple data transfers can be used to
establish the true communication bandwidth."  We have no Nallatech card or
XD1000, so this package simulates the transfer path:

* :mod:`bus` — an event-capable bus model built on the latency-bandwidth
  parameters of :class:`~repro.platforms.interconnect.InterconnectSpec`,
  with optional per-transfer jitter and a repeated-transfer overhead that
  reproduces the paper's observation that 800 back-to-back 2 KB transfers
  sustained far less than the microbenchmark rate;
* :mod:`protocols` — overhead profiles for the two modelled stacks
  (Nallatech-over-PCI-X, XD1000 HyperTransport);
* :mod:`microbenchmark` — the measurement procedure itself: sweep
  transfer sizes, time reads and writes, tabulate alphas into an
  :class:`~repro.platforms.alpha.AlphaTable`.
"""

from .bus import BusModel, TransferRecord
from .microbenchmark import MicrobenchmarkResult, measure_alpha, run_microbenchmark
from .protocols import ProtocolProfile, NALLATECH_PCIX_PROFILE, XD1000_HT_PROFILE

__all__ = [
    "BusModel",
    "MicrobenchmarkResult",
    "NALLATECH_PCIX_PROFILE",
    "ProtocolProfile",
    "TransferRecord",
    "XD1000_HT_PROFILE",
    "measure_alpha",
    "run_microbenchmark",
]
