"""Bus model: timed data transfers over a modelled interconnect.

This is the substrate that stands in for the paper's physical CPU-FPGA
link.  A :class:`BusModel` wraps an
:class:`~repro.platforms.interconnect.InterconnectSpec` (wire-level
latency-bandwidth behaviour) and a
:class:`~repro.interconnect.protocols.ProtocolProfile` (application-visible
per-transfer overheads and jitter), and exposes two views:

* a *microbenchmark* view (``transfer_time(..., microbenchmark=True)``)
  that omits the per-transfer protocol overhead — modelling a tight
  pinned-buffer timing loop, which is what the paper's alpha measurements
  used; and
* an *application* view that charges full overhead and jitter per
  transfer — what the deployed 1-D PDF actually experienced, 4.5x slower
  than the microbenchmark number.

All transfers are recorded for later inspection, and the model keeps a
monotonically increasing transfer index to drive the deterministic jitter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ParameterError
from ..platforms.interconnect import InterconnectSpec
from .protocols import ProtocolProfile

__all__ = ["TransferRecord", "BusModel"]


@dataclass(frozen=True)
class TransferRecord:
    """One completed transfer: direction, size, and timing breakdown."""

    index: int
    direction: str  # "write" (host->FPGA) or "read" (FPGA->host)
    nbytes: float
    wire_time: float
    overhead: float

    @property
    def total_time(self) -> float:
        """Wall-clock time charged for the transfer."""
        return self.wire_time + self.overhead

    @property
    def effective_bandwidth(self) -> float:
        """Bytes/second actually sustained by this transfer."""
        return self.nbytes / self.total_time


@dataclass
class BusModel:
    """A stateful transfer engine over one interconnect.

    Not thread-safe; each simulation owns its own instance.
    """

    spec: InterconnectSpec
    profile: ProtocolProfile
    record_transfers: bool = True
    _index: int = field(default=0, repr=False)
    _records: list[TransferRecord] = field(default_factory=list, repr=False)

    def transfer_time(
        self,
        nbytes: float,
        *,
        read: bool = False,
        microbenchmark: bool = False,
    ) -> float:
        """Time one transfer and record it.

        ``microbenchmark=True`` models the pinned-buffer timing loop used
        to measure alphas: wire time only, no protocol overhead or jitter.
        """
        if nbytes <= 0:
            raise ParameterError(f"nbytes must be positive, got {nbytes}")
        wire = self.spec.transfer_time(nbytes, read=read)
        if microbenchmark:
            overhead = 0.0
        else:
            overhead = self.profile.overhead(self._index, nbytes)
            jitter = self.profile.jitter_multiplier(self._index, nbytes)
            wire = wire * jitter
        record = TransferRecord(
            index=self._index,
            direction="read" if read else "write",
            nbytes=nbytes,
            wire_time=wire,
            overhead=overhead,
        )
        self._index += 1
        if self.record_transfers:
            self._records.append(record)
        return record.total_time

    def duplex_transfer_time(
        self, write_bytes: float, read_bytes: float, *, microbenchmark: bool = False
    ) -> float:
        """Time a simultaneous write+read pair.

        Full-duplex links (HyperTransport) overlap the directions and the
        pair completes in the slower direction's time; half-duplex links
        (PCI-X) serialise them.  Either direction may be zero-sized.
        """
        if write_bytes < 0 or read_bytes < 0:
            raise ParameterError("transfer sizes must be >= 0")
        if write_bytes == 0 and read_bytes == 0:
            raise ParameterError("at least one direction must move data")
        t_write = (
            self.transfer_time(write_bytes, read=False, microbenchmark=microbenchmark)
            if write_bytes > 0
            else 0.0
        )
        t_read = (
            self.transfer_time(read_bytes, read=True, microbenchmark=microbenchmark)
            if read_bytes > 0
            else 0.0
        )
        if self.spec.duplex:
            return max(t_write, t_read)
        return t_write + t_read

    @property
    def records(self) -> list[TransferRecord]:
        """All recorded transfers, in issue order."""
        return list(self._records)

    @property
    def transfer_count(self) -> int:
        """Number of transfers issued so far (recorded or not)."""
        return self._index

    def total_bytes(self, direction: str | None = None) -> float:
        """Total bytes moved, optionally filtered by direction."""
        return sum(
            r.nbytes
            for r in self._records
            if direction is None or r.direction == direction
        )

    def total_time(self, direction: str | None = None) -> float:
        """Total transfer wall-clock, optionally filtered by direction.

        Duplex overlap is *not* collapsed here — this is channel-occupancy
        accounting; callers wanting wall-clock must use the times returned
        by the transfer calls.
        """
        return sum(
            r.total_time
            for r in self._records
            if direction is None or r.direction == direction
        )

    def reset(self) -> None:
        """Clear records and the jitter index (fresh run)."""
        self._index = 0
        self._records.clear()
