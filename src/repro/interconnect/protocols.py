"""Protocol overhead profiles for the modelled interconnect stacks.

The latency-bandwidth parameters on
:class:`~repro.platforms.interconnect.InterconnectSpec` describe a *single
isolated* transfer — the situation a microbenchmark measures.  Real
applications issuing long trains of transfers see additional per-call
costs the microbenchmark amortises away: driver re-arm time, DMA
descriptor recycling, interrupt coalescing gaps.  The paper hit exactly
this: the 1-D PDF's 800 repeated 2 KB transfers made actual communication
~4.5x slower than predicted from the microbenchmark alpha, and the 2-D
PDF's communication came out "six times larger than predicted".

:class:`ProtocolProfile` carries those application-visible extras, plus a
deterministic jitter model (hash-based, reproducible without global RNG
state) for the "variability in the communication time with the small data
sizes" the paper blames for the 1-D PDF discrepancy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError

__all__ = ["ProtocolProfile", "NALLATECH_PCIX_PROFILE", "XD1000_HT_PROFILE"]


@dataclass(frozen=True)
class ProtocolProfile:
    """Application-visible per-transfer costs beyond the raw bus model.

    Parameters
    ----------
    name:
        Stack label for reports.
    per_transfer_overhead_s:
        Additional fixed cost per application-issued transfer (driver
        call, descriptor set-up) *not* visible to a tight microbenchmark
        loop that reuses a pinned buffer.
    small_transfer_threshold:
        Transfers at or below this size (bytes) suffer the small-transfer
        jitter below.
    jitter_fraction:
        Peak-to-peak relative variation applied to small transfers.
    """

    name: str
    per_transfer_overhead_s: float = 0.0
    small_transfer_threshold: float = 4096.0
    jitter_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.per_transfer_overhead_s < 0:
            raise ParameterError(
                f"{self.name}: per_transfer_overhead_s must be >= 0"
            )
        if self.small_transfer_threshold < 0:
            raise ParameterError(
                f"{self.name}: small_transfer_threshold must be >= 0"
            )
        if not 0 <= self.jitter_fraction < 1:
            raise ParameterError(
                f"{self.name}: jitter_fraction must be in [0, 1)"
            )

    def jitter_multiplier(self, transfer_index: int, transfer_bytes: float) -> float:
        """Deterministic jitter factor for one transfer.

        Small transfers get a multiplier in
        ``[1, 1 + jitter_fraction]`` derived from a hash of the transfer
        index, so runs are reproducible yet non-uniform.  Large transfers
        are unaffected (their time is wire-dominated).
        """
        if transfer_bytes > self.small_transfer_threshold or self.jitter_fraction == 0:
            return 1.0
        # Weyl-sequence hash: uniform-ish in [0, 1), deterministic.
        phase = math.modf(transfer_index * 0.6180339887498949)[0]
        return 1.0 + self.jitter_fraction * phase

    def overhead(self, transfer_index: int, transfer_bytes: float) -> float:
        """Total extra seconds charged to one application transfer."""
        base = self.per_transfer_overhead_s
        return base * self.jitter_multiplier(transfer_index, transfer_bytes)


# Calibration note: the paper's 1-D PDF measured t_comm = 2.50E-5 s per
# iteration where the microbenchmark-based prediction was 5.56E-6 s.  One
# iteration issues one 2 KB write (5.54E-6 s wire time on the calibrated
# bus) plus a tiny read (~3.0E-6 s wire); the ~1.65E-5 s gap over the two
# transfers, after the mean jitter multiplier (1.15), puts the per-call
# driver overhead near 6.6 us.
NALLATECH_PCIX_PROFILE = ProtocolProfile(
    name="Nallatech API over PCI-X",
    per_transfer_overhead_s=6.6e-6,
    small_transfer_threshold=8192.0,
    jitter_fraction=0.30,
)

# The XD1000's HyperTransport path carried one large block each way; the
# paper found predicted and actual communication "the same order of
# magnitude" with actual *faster* (1.39E-3 vs 2.62E-3 predicted) — the
# conservative alpha=0.9 under-promised.  A small fixed overhead and no
# small-transfer regime models this stack.
XD1000_HT_PROFILE = ProtocolProfile(
    name="XD1000 HyperTransport",
    per_transfer_overhead_s=2.0e-6,
    small_transfer_threshold=1024.0,
    jitter_fraction=0.05,
)
