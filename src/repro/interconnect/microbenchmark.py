"""The alpha-measurement microbenchmark (paper Section 4.2).

"The alpha parameters were computed using a microbenchmark consisting of a
read and write for a data size comparable to one used by the 1-D PDF
algorithm.  The resulting read and write times were measured, combined
with the transfer size to compute the actual communication rates, and
finally calculate the alpha parameters by dividing by the theoretical
maximum."

:func:`measure_alpha` performs exactly that procedure against the bus
model; :func:`run_microbenchmark` sweeps a size range and tabulates the
results into :class:`~repro.platforms.alpha.AlphaTable` objects ready for
worksheet use, which is the paper's recommended practice ("the resulting
alpha values can be tabulated and used in future RAT analyses for that
FPGA platform").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ParameterError
from ..platforms.alpha import AlphaTable
from ..platforms.interconnect import InterconnectSpec
from .bus import BusModel
from .protocols import ProtocolProfile

__all__ = ["MicrobenchmarkResult", "measure_alpha", "run_microbenchmark"]

# The paper's platform characterisation swept "a wide range of possible
# data sizes"; we default to 256 B .. 16 MB in octaves.
DEFAULT_SIZES: tuple[float, ...] = tuple(256.0 * 2**i for i in range(17))


@dataclass(frozen=True)
class MicrobenchmarkResult:
    """Tabulated alphas for both directions of one interconnect."""

    interconnect_name: str
    write_table: AlphaTable
    read_table: AlphaTable
    repetitions: int

    def render(self) -> str:
        """ASCII table: size vs write/read alpha."""
        lines = [
            f"Microbenchmark: {self.interconnect_name} "
            f"({self.repetitions} repetitions/size)",
            f"{'size (B)':>12}  {'alpha_write':>11}  {'alpha_read':>10}",
        ]
        for (size, a_w), (_, a_r) in zip(
            self.write_table.as_rows(), self.read_table.as_rows()
        ):
            lines.append(f"{size:>12.0f}  {a_w:>11.4f}  {a_r:>10.4f}")
        return "\n".join(lines)


def measure_alpha(
    spec: InterconnectSpec,
    profile: ProtocolProfile,
    transfer_bytes: float,
    *,
    read: bool = False,
    repetitions: int = 16,
    include_protocol_overhead: bool = False,
) -> float:
    """Measure the sustained fraction at one transfer size.

    Runs ``repetitions`` timed transfers and converts the mean time into
    an alpha.  With ``include_protocol_overhead=False`` (default) this is
    the paper's pinned-buffer microbenchmark; setting it True measures the
    *application-visible* alpha instead — the quantity the paper wishes it
    had used for the repeated-small-transfer case studies.
    """
    if repetitions < 1:
        raise ParameterError(f"repetitions must be >= 1, got {repetitions}")
    bus = BusModel(spec=spec, profile=profile, record_transfers=False)
    total = 0.0
    for _ in range(repetitions):
        total += bus.transfer_time(
            transfer_bytes,
            read=read,
            microbenchmark=not include_protocol_overhead,
        )
    mean_time = total / repetitions
    achieved = transfer_bytes / mean_time
    return achieved / spec.ideal_bandwidth


def run_microbenchmark(
    spec: InterconnectSpec,
    profile: ProtocolProfile,
    *,
    sizes: Iterable[float] = DEFAULT_SIZES,
    repetitions: int = 16,
    include_protocol_overhead: bool = False,
) -> MicrobenchmarkResult:
    """Sweep transfer sizes and tabulate both directions' alphas."""
    size_list = sorted(set(float(s) for s in sizes))
    if not size_list:
        raise ParameterError("at least one transfer size is required")
    write_pairs = []
    read_pairs = []
    for size in size_list:
        write_pairs.append(
            (
                size,
                measure_alpha(
                    spec,
                    profile,
                    size,
                    read=False,
                    repetitions=repetitions,
                    include_protocol_overhead=include_protocol_overhead,
                ),
            )
        )
        read_pairs.append(
            (
                size,
                measure_alpha(
                    spec,
                    profile,
                    size,
                    read=True,
                    repetitions=repetitions,
                    include_protocol_overhead=include_protocol_overhead,
                ),
            )
        )
    label_suffix = " (application)" if include_protocol_overhead else ""
    return MicrobenchmarkResult(
        interconnect_name=spec.name,
        write_table=AlphaTable.from_pairs(
            write_pairs, label=f"{spec.name} write{label_suffix}"
        ),
        read_table=AlphaTable.from_pairs(
            read_pairs, label=f"{spec.name} read{label_suffix}"
        ),
        repetitions=repetitions,
    )
