"""``python -m repro`` dispatches to the CLI.

Guarded so ``import repro.__main__`` (e.g. by documentation tooling or
``runpy`` introspection) does not execute a CLI run as an import side
effect — only ``python -m repro`` does.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
