"""Command-line interface: ``rat`` (or ``python -m repro``).

Subcommands
-----------
``rat worksheet --json FILE | --study NAME [--clocks 75,100,150]``
    Render the input sheet and predicted performance table for a
    worksheet (from a JSON file of Table-1 fields or a named study).
    ``--format json`` emits the predictions as machine-readable JSON.
``rat study NAME [--json]``
    Full case-study report: inputs, predicted table with the simulated
    actual column, and the resource report (``--json`` for scripting).
``rat experiment ID | --all``
    Run one (or every) registered paper reproduction experiment.
``rat goalseek --study NAME --target X [--variable throughput_proc]``
    Inverse analysis: the parameter value needed for a target speedup.
``rat trace --study NAME --out FILE``
    Run the event-driven simulator and export the realised schedule as a
    Chrome trace-event file (open in chrome://tracing / Perfetto).
``rat explore --study NAME --axis clock_mhz=75,100,150 --axis alpha=0.1:0.5:9``
    Grid design-space exploration on the vectorized batch engine:
    every combination of the axis values is predicted in bulk
    (``--workers``/``--chunk`` control parallelism and chunking;
    ``--format json`` emits machine-readable records, ``--top K`` keeps
    the K best by speedup).  Fault tolerance: ``--on-error
    {fail,skip,quarantine}`` picks the failure policy, ``--max-retries``/
    ``--timeout`` tune chunk retry, and ``--checkpoint PATH`` with
    ``--resume`` journals completed chunks for crash recovery.
``rat platforms [--format json]``
    List catalogued platforms/devices/interconnects (``--format json``
    for a machine-readable catalog).
``rat serve [--host H] [--port P] [--max-batch N] [--max-wait-us U]``
    Run the micro-batching HTTP prediction service (``POST /v1/predict``,
    ``/v1/batch``, ``/v1/explore``; ``GET /healthz``, ``/healthz/live``,
    ``/healthz/ready``, ``/metrics`` in Prometheus exposition format).
    Concurrent single predictions are coalesced onto the vectorized
    batch engine; drains gracefully on SIGTERM/SIGINT.  ``--access-log
    [FILE]`` streams structured JSONL access and lifecycle events
    (stderr when no file is given).  ``--shards N`` runs the
    self-healing multi-process cluster instead: N shard processes share
    the port, a supervisor restarts crashes with backoff (benching
    crash-loopers behind a ``--restart-budget`` circuit breaker), kills
    hung shards, rolls restarts on SIGHUP, and keeps ``/healthz/ready``
    honest against the ``--min-shards`` readiness floor.
    ``--metrics-port P`` adds a supervisor-side listener serving the
    cluster-merged Prometheus ``/metrics`` (restart-monotone counters)
    and JSON ``/status``; ``--max-shards N`` enables queue-depth
    autoscaling between the ``--min-shards`` floor and N
    (``--scale-up-depth`` / ``--scale-down-depth`` hysteresis,
    ``--scale-cooldown`` between actions).
``rat bench report --manifest FILE [--baseline FILE] [--threshold PCT]``
    The perf-regression ratchet: diff a run manifest against a baseline
    (default: the newest committed ``BENCH_PR*.json`` record) over the
    guarded metric set and exit nonzero on any regression beyond the
    threshold.  ``--inject FRAC`` adversarially degrades the current
    metrics first — CI uses it to prove the gate trips.

Global observability flags (any subcommand): ``--trace FILE`` records
wall-clock spans of the run itself and writes a Chrome trace; ``--metrics
FILE`` writes the plain-text metrics summary; ``--log-json FILE``
streams structured JSONL events (``-`` for stderr).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Sequence

from . import __version__
from .analysis.experiments import list_experiments, run_all_experiments, run_experiment
from .apps.registry import get_case_study, list_case_studies
from .core.buffering import BufferingMode
from .core.goalseek import required_alpha, required_clock, required_throughput_proc
from .core.params import RATInput
from .core.worksheet import RATWorksheet
from .errors import RATError
from .obs import (
    SimTrace,
    TRACK_COMPUTE,
    TRACK_READ,
    TRACK_WRITE,
    configure,
    get_metrics,
    get_tracer,
    write_chrome_trace,
    write_metrics_summary,
)
from .platforms import list_devices, list_interconnects, list_platforms, get_platform
from .units import MB, MHZ

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="rat",
        description="RAT: RC Amenability Test — FPGA migration performance "
        "prediction (reproduction of Holland et al., HPRCTA'07)",
    )
    parser.add_argument("--version", action="version", version=f"rat {__version__}")
    parser.add_argument(
        "--trace",
        default="",
        metavar="FILE",
        help="record wall-clock spans of this run and write a Chrome "
        "trace-event JSON file on exit",
    )
    parser.add_argument(
        "--metrics",
        default="",
        metavar="FILE",
        help="write the plain-text metrics summary on exit",
    )
    parser.add_argument(
        "--log-json",
        default="",
        metavar="FILE",
        help="stream structured JSONL log events to FILE ('-' for stderr)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ws = sub.add_parser("worksheet", help="render a RAT worksheet")
    source = ws.add_mutually_exclusive_group(required=True)
    source.add_argument("--json", help="path to a worksheet JSON file")
    source.add_argument("--study", choices=list_case_studies())
    ws.add_argument(
        "--clocks", default="", help="comma-separated clock sweep in MHz"
    )
    ws.add_argument(
        "--double-buffered", action="store_true", help="use Equation (6)"
    )
    ws.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="output format (json emits inputs + predictions for scripting)",
    )

    st = sub.add_parser("study", help="full case-study report")
    st.add_argument("name", choices=list_case_studies())
    st.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="output format",
    )
    st.add_argument(
        "--json",
        action="store_const",
        const="json",
        dest="format",
        help="shorthand for --format json",
    )

    ex = sub.add_parser("experiment", help="run paper reproduction experiments")
    ex_target = ex.add_mutually_exclusive_group(required=True)
    ex_target.add_argument("id", nargs="?", choices=list_experiments())
    ex_target.add_argument("--all", action="store_true")

    gs = sub.add_parser("goalseek", help="inverse analysis for a target speedup")
    gs.add_argument("--study", required=True, choices=list_case_studies())
    gs.add_argument("--target", type=float, required=True)
    gs.add_argument(
        "--variable",
        default="throughput_proc",
        choices=["throughput_proc", "clock", "alpha"],
    )
    gs.add_argument("--double-buffered", action="store_true")

    sweep = sub.add_parser(
        "sweep", help="sweep one parameter and chart predicted speedup"
    )
    sweep.add_argument("--study", required=True, choices=list_case_studies())
    sweep.add_argument(
        "--variable", default="clock",
        choices=["clock", "alpha", "throughput_proc"],
    )
    sweep.add_argument(
        "--values", required=True,
        help="comma-separated values (MHz for clock, fractions for alpha)",
    )
    sweep.add_argument("--double-buffered", action="store_true")

    lint = sub.add_parser(
        "lint", help="check a worksheet for the paper's classic mistakes"
    )
    lint_source = lint.add_mutually_exclusive_group(required=True)
    lint_source.add_argument("--json", help="path to a worksheet JSON file")
    lint_source.add_argument("--study", choices=list_case_studies())
    lint.add_argument(
        "--platform", default="",
        help="platform name for curve-based checks (default: the study's)",
    )
    lint.add_argument("--double-buffered", action="store_true")

    report = sub.add_parser(
        "report", help="generate the Markdown reproduction report"
    )
    report.add_argument(
        "--output", "-o", default="", help="write to a file instead of stdout"
    )

    trace = sub.add_parser(
        "trace",
        help="simulate a study and export its schedule as a Chrome trace",
    )
    trace.add_argument("--study", required=True, choices=list_case_studies())
    trace.add_argument(
        "--out", required=True, help="output path for the trace-event JSON"
    )
    trace.add_argument(
        "--clock",
        type=float,
        default=None,
        help="fabric clock in MHz (default: the study's measured clock)",
    )
    trace.add_argument(
        "--single-buffered",
        action="store_true",
        help="trace the sequential schedule instead of the default "
        "double-buffered overlap (paper Figure 2)",
    )
    trace.add_argument(
        "--buffers",
        type=int,
        default=None,
        help="explicit buffer-pool depth (overrides the buffering mode)",
    )

    explore_cmd = sub.add_parser(
        "explore",
        help="grid design-space exploration on the batch engine",
    )
    explore_cmd.add_argument(
        "--study", required=True, choices=list_case_studies()
    )
    explore_cmd.add_argument(
        "--axis",
        action="append",
        required=True,
        metavar="NAME=SPEC",
        help="axis values: NAME=v1,v2,... or NAME=lo:hi:count (linspace); "
        "repeat for a multi-axis grid",
    )
    explore_cmd.add_argument("--double-buffered", action="store_true")
    explore_cmd.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool workers for chunk evaluation (default serial; "
        "0 means one per CPU core)",
    )
    explore_cmd.add_argument(
        "--on-error",
        default="fail",
        choices=["fail", "skip", "quarantine"],
        help="failure policy: abort on the first bad design/chunk (fail), "
        "drop failed rows (skip), or keep NaN rows with diagnostics "
        "(quarantine)",
    )
    explore_cmd.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="re-executions per failed chunk before it counts as failed",
    )
    explore_cmd.add_argument(
        "--timeout",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="per-chunk wall-clock timeout on the worker-pool path "
        "(0 disables)",
    )
    explore_cmd.add_argument(
        "--checkpoint",
        default="",
        metavar="PATH",
        help="journal completed chunks to this JSONL file for crash "
        "recovery",
    )
    explore_cmd.add_argument(
        "--resume",
        action="store_true",
        help="resume from the --checkpoint journal of an interrupted run",
    )
    explore_cmd.add_argument(
        "--chunk",
        type=int,
        default=0,
        metavar="N",
        help="design points per batch chunk (default: engine default)",
    )
    explore_cmd.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="K",
        help="print only the K highest-speedup points",
    )
    explore_cmd.add_argument(
        "--format",
        default="table",
        choices=["table", "json"],
        help="output format",
    )

    plat = sub.add_parser("platforms", help="list the platform catalog")
    plat.add_argument(
        "--format",
        default="table",
        choices=["table", "json"],
        help="output format",
    )

    srv = sub.add_parser(
        "serve",
        help="run the micro-batching HTTP prediction service",
    )
    srv.add_argument("--host", default="127.0.0.1", help="bind address")
    srv.add_argument(
        "--port",
        type=int,
        default=8321,
        help="bind port (0 picks an ephemeral port, printed at startup)",
    )
    srv.add_argument(
        "--max-batch",
        type=int,
        default=64,
        metavar="N",
        help="max single predictions coalesced per batch (default 64)",
    )
    srv.add_argument(
        "--max-wait-us",
        type=float,
        default=200.0,
        metavar="US",
        help="coalescing window in microseconds (default 200; 0 disables)",
    )
    srv.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="micro-batcher consumer tasks (default 1)",
    )
    srv.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        metavar="N",
        help="admission-queue bound; beyond it requests get 429",
    )
    srv.add_argument(
        "--deadline-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="default per-request deadline (0 = none; expired -> 504)",
    )
    srv.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help="seconds to wait for in-flight work on SIGTERM (default 10)",
    )
    srv.add_argument(
        "--access-log",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="emit one structured JSONL event per request (plus batcher "
        "lifecycle events) to FILE, or stderr when no file is given",
    )
    srv.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run N shard processes behind a self-healing supervisor "
        "(0 = classic single-process mode, the default)",
    )
    srv.add_argument(
        "--min-shards",
        type=int,
        default=1,
        metavar="N",
        help="readiness floor: /healthz/ready answers 503 while fewer "
        "than N shards are ready (default 1)",
    )
    srv.add_argument(
        "--restart-backoff",
        type=float,
        default=0.1,
        metavar="S",
        help="initial crash-restart backoff in seconds, doubling per "
        "consecutive restart (default 0.1)",
    )
    srv.add_argument(
        "--restart-budget",
        type=int,
        default=5,
        metavar="N",
        help="circuit breaker: bench a shard after N restarts within "
        "the restart window (default 5)",
    )
    srv.add_argument(
        "--restart-window",
        type=float,
        default=30.0,
        metavar="S",
        help="sliding window for the restart budget (default 30)",
    )
    srv.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=3.0,
        metavar="S",
        help="liveness deadline: a shard silent this long is killed "
        "and restarted (default 3)",
    )
    srv.add_argument(
        "--max-shards",
        type=int,
        default=0,
        metavar="N",
        help="autoscaling ceiling: spawn shards under queue pressure "
        "up to N, retire idle ones back to --min-shards "
        "(0 disables autoscaling, the default)",
    )
    srv.add_argument(
        "--scale-up-depth",
        type=float,
        default=8.0,
        metavar="D",
        help="spawn a shard when smoothed queue depth per ready shard "
        "exceeds D (default 8)",
    )
    srv.add_argument(
        "--scale-down-depth",
        type=float,
        default=1.0,
        metavar="D",
        help="retire the newest idle shard when smoothed queue depth "
        "per ready shard falls below D (default 1)",
    )
    srv.add_argument(
        "--scale-cooldown",
        type=float,
        default=5.0,
        metavar="S",
        help="minimum seconds between autoscaling actions (default 5)",
    )
    srv.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the aggregated cluster /metrics (and JSON /status) "
        "from the supervisor on this port (0 picks an ephemeral "
        "port, printed at startup; omit to disable)",
    )

    bench = sub.add_parser("bench", help="benchmark/perf tooling")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_report = bench_sub.add_parser(
        "report",
        help="perf-regression ratchet: diff a run manifest against the "
        "committed trajectory; nonzero exit on regression",
    )
    bench_report.add_argument(
        "--manifest",
        default="",
        metavar="FILE",
        help="the current run's manifest (rat-run-manifest/v1); "
        "required unless --history",
    )
    bench_report.add_argument(
        "--history",
        action="store_true",
        help="render the whole committed BENCH_PR*.json trajectory as a "
        "per-metric table instead of ratcheting one manifest",
    )
    bench_report.add_argument(
        "--baseline",
        default="",
        metavar="FILE",
        help="baseline manifest or BENCH_PR*.json record (default: the "
        "newest BENCH_PR*.json under --root)",
    )
    bench_report.add_argument(
        "--root",
        default=".",
        metavar="DIR",
        help="directory holding the BENCH_PR*.json trajectory (default .)",
    )
    bench_report.add_argument(
        "--threshold",
        type=float,
        default=15.0,
        metavar="PCT",
        help="regression tolerance in percent (default 15)",
    )
    bench_report.add_argument(
        "--inject",
        type=float,
        default=0.0,
        metavar="FRAC",
        help="adversarially degrade current metrics by this fraction "
        "before comparing (0.2 = fake a 20%% regression; CI gate "
        "self-test)",
    )

    return parser


def _parse_clocks(text: str) -> tuple[float, ...]:
    if not text:
        return ()
    return tuple(float(part) for part in text.split(",") if part.strip())


def _cmd_worksheet(args: argparse.Namespace) -> int:
    if args.json:
        with open(args.json, encoding="utf-8") as handle:
            rat = RATInput.from_dict(json.load(handle))
    else:
        rat = get_case_study(args.study).rat
    worksheet = RATWorksheet(rat, clocks_mhz=_parse_clocks(args.clocks))
    mode = BufferingMode.DOUBLE if args.double_buffered else BufferingMode.SINGLE
    if args.format == "json":
        table = worksheet.performance_table(mode)
        print(json.dumps(
            {
                "name": rat.name,
                "mode": mode.value,
                "inputs": rat.to_dict(),
                "predictions": table.as_records(),
            },
            indent=2,
            sort_keys=True,
        ))
        return 0
    print(worksheet.input_table())
    print()
    print(worksheet.performance_table(mode).render())
    return 0


def _study_json(study) -> dict:
    """Machine-readable study report (predictions, actual, resources)."""
    from .platforms.device import ResourceKind

    result = study.simulate()
    report = study.resource_report()
    return {
        "name": study.name,
        "platform": study.platform.name,
        "mode": study.mode.value,
        "inputs": study.rat.to_dict(),
        "predictions": study.predicted_table().as_records(),
        "actual": result.as_actual_column(study.rat.software.t_soft),
        "resources": {
            "fits": report.fits,
            "routing_risk": report.routing_risk,
            "limiting": report.limiting_resource.value,
            "utilization": {
                kind.value: report.utilization(kind) for kind in ResourceKind
            },
        },
        "notes": study.notes,
    }


def _cmd_study(args: argparse.Namespace) -> int:
    study = get_case_study(args.name)
    if args.format == "json":
        print(json.dumps(_study_json(study), indent=2, sort_keys=True))
        return 0
    print(f"# {study.name}")
    print()
    print(study.platform.describe())
    print()
    print(study.worksheet().input_table())
    print()
    print(study.performance_table_with_actual().render())
    print()
    print(study.resource_report().render())
    if study.notes:
        print()
        print(f"Notes: {study.notes}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    results = run_all_experiments() if args.all else [run_experiment(args.id)]
    failures = 0
    for result in results:
        print(result.render())
        print()
        if not result.all_within:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) had cells outside tolerance")
    return 1 if failures else 0


def _cmd_goalseek(args: argparse.Namespace) -> int:
    study = get_case_study(args.study)
    mode = BufferingMode.DOUBLE if args.double_buffered else BufferingMode.SINGLE
    rat = study.rat
    if args.variable == "throughput_proc":
        value = required_throughput_proc(rat, args.target, mode)
        print(
            f"{study.name}: {value:.2f} ops/cycle required for "
            f"{args.target:g}x ({mode.value}-buffered, at "
            f"{rat.computation.clock_mhz:g} MHz)"
        )
    elif args.variable == "clock":
        value = required_clock(rat, args.target, mode)
        print(
            f"{study.name}: {value / MHZ:.1f} MHz required for {args.target:g}x "
            f"({mode.value}-buffered, at {rat.computation.throughput_proc:g} "
            "ops/cycle)"
        )
    else:
        value = required_alpha(rat, args.target, mode)
        feasible = "" if value <= 1 else "  (INFEASIBLE: exceeds 1)"
        print(
            f"{study.name}: uniform alpha {value:.3f} required for "
            f"{args.target:g}x ({mode.value}-buffered){feasible}"
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis.sweep import sweep_alpha, sweep_clock, sweep_throughput_proc

    study = get_case_study(args.study)
    mode = BufferingMode.DOUBLE if args.double_buffered else BufferingMode.SINGLE
    values = [float(part) for part in args.values.split(",") if part.strip()]
    if args.variable == "clock":
        result = sweep_clock(study.rat, [v * MHZ for v in values], mode)
    elif args.variable == "alpha":
        result = sweep_alpha(study.rat, values, mode)
    else:
        result = sweep_throughput_proc(study.rat, values, mode)
    print(result.render_ascii())
    best_value, best = result.best()
    print(f"best: {args.variable}={best_value:g} -> {best.speedup:.1f}x")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .core.lint import lint_worksheet

    platform = None
    if args.json:
        with open(args.json, encoding="utf-8") as handle:
            rat = RATInput.from_dict(json.load(handle))
    else:
        study = get_case_study(args.study)
        rat = study.rat
        platform = study.platform
    if args.platform:
        platform = get_platform(args.platform)
    mode = BufferingMode.DOUBLE if args.double_buffered else BufferingMode.SINGLE
    warnings = lint_worksheet(rat, platform, mode)
    if not warnings:
        print("no findings")
        return 0
    for warning in warnings:
        print(warning.describe())
    return 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.reportgen import generate_markdown_report

    text = generate_markdown_report()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    study = get_case_study(args.study)
    mode = (
        BufferingMode.SINGLE if args.single_buffered else BufferingMode.DOUBLE
    )
    clock = args.clock if args.clock is not None else (
        study.actual_clock_mhz or study.clocks_mhz[-1]
    )
    trace = SimTrace(name=f"{study.name} @ {clock:g} MHz ({mode.value}-buffered)")
    sim = dataclasses.replace(
        study.simulator(clock),
        mode=mode,
        n_buffers=args.buffers,
        trace=trace,
    )
    result = sim.run()
    trace.write(args.out)
    overlapped = trace.tracks_overlap(TRACK_WRITE, TRACK_COMPUTE) or (
        trace.tracks_overlap(TRACK_READ, TRACK_COMPUTE)
    )
    print(
        f"{study.name}: {result.n_iterations} iterations, "
        f"{mode.value}-buffered @ {clock:g} MHz"
    )
    print(
        f"  t_rc {result.t_rc:.3e} s, comm {result.t_comm_total:.3e} s, "
        f"comp {result.t_comp_total:.3e} s"
    )
    print(
        f"  transfer/compute lanes {'overlap' if overlapped else 'do not overlap'}"
    )
    print(
        f"wrote {len(trace.events)} trace events to {args.out} "
        "(open in chrome://tracing or https://ui.perfetto.dev)"
    )
    return 0


def _parse_axis_spec(text: str) -> tuple[str, list[float]]:
    """Parse one ``--axis NAME=v1,v2,...`` / ``NAME=lo:hi:count`` flag."""
    from .errors import ParameterError

    name, separator, spec = text.partition("=")
    name, spec = name.strip(), spec.strip()
    if not separator or not name or not spec:
        raise ParameterError(
            f"malformed axis {text!r}; expected NAME=v1,v2,... or "
            "NAME=lo:hi:count"
        )
    if ":" in spec:
        parts = spec.split(":")
        if len(parts) != 3:
            raise ParameterError(
                f"malformed axis range {spec!r}; expected lo:hi:count"
            )
        low, high, count = float(parts[0]), float(parts[1]), int(parts[2])
        if count < 1:
            raise ParameterError(f"axis {name!r} count must be >= 1")
        if count == 1:
            return name, [low]
        step = (high - low) / (count - 1)
        return name, [low + step * i for i in range(count)]
    return name, [float(part) for part in spec.split(",") if part.strip()]


def _cmd_explore(args: argparse.Namespace) -> int:
    from .explore import DEFAULT_CHUNK_SIZE, DesignSpace, RetryPolicy, explore

    study = get_case_study(args.study)
    mode = BufferingMode.DOUBLE if args.double_buffered else BufferingMode.SINGLE
    axes: dict[str, list[float]] = {}
    for flag in args.axis:
        name, values = _parse_axis_spec(flag)
        axes[name] = values
    space = DesignSpace.grid(study.rat, **axes)
    retry = RetryPolicy(
        max_retries=args.max_retries,
        timeout_s=args.timeout if args.timeout > 0 else None,
    )
    result = explore(
        space,
        mode,
        chunk_size=args.chunk if args.chunk > 0 else DEFAULT_CHUNK_SIZE,
        workers=args.workers,
        on_error=args.on_error,
        retry=retry,
        checkpoint=args.checkpoint or None,
        resume=args.resume,
    )
    records = result.as_records()
    # Quarantined rows carry NaN predictions; keep them out of the
    # ranking (NaN compares false to everything, which would scramble
    # the sort) and report them as failures below instead.
    order = sorted(
        (i for i in range(len(records)) if records[i]["speedup"] == records[i]["speedup"]),
        key=lambda i: -records[i]["speedup"],
    )
    if args.top > 0:
        order = order[: args.top]
    failure_lines = [failure.describe() for failure in result.failures]
    failure_lines += [failure.describe() for failure in result.chunk_failures]
    if args.format == "json":
        print(json.dumps(
            {
                "name": study.rat.name,
                "mode": mode.value,
                "axes": {name: values for name, values in axes.items()},
                "points": len(result),
                "elapsed_s": result.elapsed_s,
                "points_per_sec": result.points_per_sec,
                "failed_points": result.n_failed,
                "failures": failure_lines,
                "resumed_chunks": result.resumed_chunks,
                "retries": result.retries,
                "predictions": [records[i] for i in order],
            },
            indent=2,
            sort_keys=True,
        ))
        return 0
    axis_headers = list(space.axes)
    headers = axis_headers + ["speedup", "t_rc", "util_comm", "bound"]
    rows = []
    for i in order:
        record = records[i]
        bound = "comp" if record["t_comp"] >= record["t_comm"] else "comm"
        rows.append(
            [f"{record[name]:g}" for name in axis_headers]
            + [
                f"{record['speedup']:.2f}x",
                f"{record['t_rc']:.3e}",
                f"{record['util_comm']:.2f}",
                bound,
            ]
        )
    widths = [
        max(len(header), *(len(row[j]) for row in rows))
        for j, header in enumerate(headers)
    ]
    print("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    print(
        f"{len(result)} point(s) in {result.elapsed_s:.3f} s "
        f"({result.points_per_sec:,.0f} predictions/s, "
        f"{mode.value}-buffered)"
    )
    if result.resumed_chunks:
        print(f"{result.resumed_chunks} chunk(s) resumed from checkpoint")
    if failure_lines:
        shown = failure_lines[:10]
        print(f"{result.n_failed} failed point(s) [{args.on_error}]:")
        for line in shown:
            print(f"  {line}")
        if len(failure_lines) > len(shown):
            print(f"  ... and {len(failure_lines) - len(shown)} more")
    return 0


def _cmd_platforms(args: argparse.Namespace) -> int:
    if getattr(args, "format", "table") == "json":
        platforms = []
        for name in list_platforms():
            platform = get_platform(name)
            platforms.append({
                "name": platform.name,
                "device": platform.device.name,
                "interconnect": platform.interconnect.name,
                "ideal_mbps": platform.ideal_bandwidth / MB,
                "host_description": platform.host_description,
            })
        print(json.dumps(
            {
                "platforms": platforms,
                "devices": list_devices(),
                "interconnects": list_interconnects(),
            },
            indent=2,
            sort_keys=True,
        ))
        return 0
    print("Platforms:")
    for name in list_platforms():
        print(get_platform(name).describe())
        print()
    print("Devices:      " + ", ".join(list_devices()))
    print("Interconnects: " + ", ".join(list_interconnects()))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    if args.shards > 0:
        from .serve.supervisor import RestartPolicy, run_cluster

        return run_cluster(
            shards=args.shards,
            min_shards=min(args.min_shards, args.shards),
            host=args.host,
            port=args.port,
            policy=RestartPolicy(
                backoff_initial_s=args.restart_backoff,
                budget=args.restart_budget,
                window_s=args.restart_window,
            ),
            liveness_timeout_s=args.heartbeat_timeout,
            drain_timeout_s=args.drain_timeout,
            access_log=args.access_log,
            metrics_port=args.metrics_port,
            max_shards=(
                max(args.max_shards, args.shards)
                if args.max_shards > 0
                else None
            ),
            scale_up_depth=args.scale_up_depth,
            scale_down_depth=args.scale_down_depth,
            scale_cooldown_s=args.scale_cooldown,
            max_batch_size=args.max_batch,
            max_wait_us=args.max_wait_us,
            workers=args.workers,
            max_pending=args.max_pending,
            default_deadline_s=(
                args.deadline_ms * 1e-3 if args.deadline_ms > 0 else None
            ),
        )

    from .serve import serve

    asyncio.run(serve(
        host=args.host,
        port=args.port,
        max_batch_size=args.max_batch,
        max_wait_us=args.max_wait_us,
        workers=args.workers,
        max_pending=args.max_pending,
        default_deadline_s=(
            args.deadline_ms * 1e-3 if args.deadline_ms > 0 else None
        ),
        drain_timeout_s=args.drain_timeout,
        access_log=args.access_log,
    ))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .obs.manifest import (
        compare,
        load_manifest,
        load_trajectory,
        render_history,
    )

    if args.history:
        print(render_history(args.root))
        return 0
    if not args.manifest:
        print(
            "error: --manifest is required (or pass --history for the "
            "trajectory table)",
            file=sys.stderr,
        )
        return 2
    current = load_manifest(args.manifest)
    if args.baseline:
        baseline = load_manifest(args.baseline)
    else:
        trajectory = load_trajectory(args.root)
        if not trajectory:
            print(
                f"error: no BENCH_PR*.json trajectory records under "
                f"{args.root!r}; pass --baseline explicitly",
                file=sys.stderr,
            )
            return 2
        _, baseline_path, baseline = trajectory[-1]
        print(f"baseline: {baseline_path}", file=sys.stderr)
    report = compare(
        current,
        baseline,
        threshold=args.threshold / 100.0,
        inject=args.inject,
    )
    print(report.render())
    return 1 if report.failed else 0


def _export_observability(args: argparse.Namespace) -> None:
    """Honour the global ``--trace`` / ``--metrics`` flags on exit."""
    if args.trace:
        write_chrome_trace(args.trace, get_tracer())
        print(
            f"wrote trace ({len(get_tracer().spans)} spans) to {args.trace}",
            file=sys.stderr,
        )
    if args.metrics:
        write_metrics_summary(args.metrics, get_metrics())
        print(f"wrote metrics summary to {args.metrics}", file=sys.stderr)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.trace:
        configure(trace=True)
    if args.log_json:
        from .obs import configure_logging

        configure_logging(args.log_json)
    handlers = {
        "worksheet": _cmd_worksheet,
        "study": _cmd_study,
        "experiment": _cmd_experiment,
        "goalseek": _cmd_goalseek,
        "sweep": _cmd_sweep,
        "lint": _cmd_lint,
        "report": _cmd_report,
        "trace": _cmd_trace,
        "explore": _cmd_explore,
        "platforms": _cmd_platforms,
        "serve": _cmd_serve,
        "bench": _cmd_bench,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: exit
        # quietly with the conventional SIGPIPE status.  Must precede
        # the OSError handler below — it is a subclass.
        try:
            sys.stdout.close()
        except OSError:  # pragma: no cover - double-close race
            pass
        return 141
    except (RATError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        try:
            _export_observability(args)
        except OSError as exc:  # pragma: no cover - unwritable export path
            print(f"error: could not export observability: {exc}",
                  file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
